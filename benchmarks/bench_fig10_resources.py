"""Figure 10: pruning rate vs switch resources, one test per subplot.

Each test sweeps the paper's resource knob for one operator, prints the
fraction of entries that survive (the paper plots the unpruned fraction
on a log scale), includes the OPT oracle, and asserts the paper's shape:

* 10a DISTINCT — w=2, d=4096 prunes essentially all duplicates; smaller
  d or FIFO slightly lower but still > 99%.
* 10b SKYLINE — APH >= SUM >= Baseline; APH near-perfect by w=20.
* 10c TOP N — randomized (with its 0.01% failure allowance) prunes far
  more than deterministic.
* 10d GROUP BY — ~99% pruning with 3 stages, near-OPT with 9.
* 10e JOIN — pruning improves with filter memory; BF ~ RBF.
* 10f HAVING — near-perfect with >= 512 counters per row.

Stream sizes are laptop-scale; the memory sweeps keep the paper's
keys-to-bits ratios where the absolute sizes matter (10e).
"""

from __future__ import annotations

import pytest

from repro.analysis.opt import (
    opt_distinct_rate,
    opt_groupby_rate,
    opt_having_rate,
    opt_join_rate,
    opt_skyline_rate,
    opt_topn_rate,
)
from repro.core.base import PruneDecision
from repro.core.distinct import DistinctPruner
from repro.core.groupby import GroupByPruner
from repro.core.having import HavingPruner
from repro.core.join import JoinPruner
from repro.core.skyline import SkylinePruner
from repro.core.topn import TopNDeterministicPruner, TopNRandomizedPruner
from repro.workloads.synthetic import (
    keyed_values,
    overlapping_key_sets,
    random_order_stream,
    revenue_stream,
    uniform_points,
    zipf_keys,
)

from _harness import emit, table


def _unpruned(rate: float) -> str:
    return f"{1 - rate:.2e}"


def test_fig10a_distinct(benchmark):
    # ~500 distinct user agents (the Big Data column's cardinality class):
    # with D well below d the d=4096 matrix retains every value's cache
    # line, which is the regime where the paper prunes all duplicates.
    stream = random_order_stream(200_000, 500, seed=1)
    configs = [
        ("LRU d=4096 w=2", DistinctPruner(rows=4096, cols=2, policy="lru")),
        ("LRU d=1024 w=2", DistinctPruner(rows=1024, cols=2, policy="lru")),
        ("LRU d=256  w=2", DistinctPruner(rows=256, cols=2, policy="lru")),
        ("FIFO d=4096 w=2", DistinctPruner(rows=4096, cols=2, policy="fifo")),
    ]
    rows = []
    rates = {}
    for name, pruner in configs:
        pruner.survivors(stream)
        rates[name] = pruner.stats.pruning_rate
        rows.append((name, f"{rates[name]:.4%}", _unpruned(rates[name])))
    opt = opt_distinct_rate(stream)
    rows.append(("OPT", f"{opt:.4%}", _unpruned(opt)))
    emit("fig10a_distinct", table(["config", "pruned", "unpruned frac"], rows))

    # d=4096 prunes > 99% of entries, within a small factor of OPT on the
    # log scale the paper plots; pruning degrades monotonically with d,
    # and FIFO tracks LRU closely on an unskewed stream.
    assert rates["LRU d=4096 w=2"] > 0.99
    assert (1 - rates["LRU d=4096 w=2"]) < (1 - opt) * 4
    assert (
        rates["LRU d=4096 w=2"]
        > rates["LRU d=1024 w=2"]
        > rates["LRU d=256  w=2"]
    )
    assert abs(rates["FIFO d=4096 w=2"] - rates["LRU d=4096 w=2"]) < 0.01
    assert all(rate <= opt + 1e-9 for rate in rates.values())
    benchmark(lambda: DistinctPruner(rows=512, cols=2).survivors(stream[:20_000]))


def test_fig10b_skyline(benchmark):
    points = uniform_points(50_000, dims=2, seed=2)
    opt = opt_skyline_rate(points)
    rows = []
    rates = {}
    for score in ("aph", "sum", "baseline"):
        for w in (2, 5, 7, 10, 20):
            pruner = SkylinePruner(dims=2, points=w, score=score)
            for p in points:
                pruner.process(p)
            rates[(score, w)] = pruner.stats.pruning_rate
            rows.append(
                (score, w, f"{rates[(score, w)]:.4%}", _unpruned(rates[(score, w)]))
            )
    rows.append(("OPT", "-", f"{opt:.4%}", _unpruned(opt)))
    emit("fig10b_skyline", table(["score", "w", "pruned", "unpruned frac"], rows))

    # APH and SUM prune > 99% with w <= 7; baseline needs more points.
    assert rates[("aph", 7)] > 0.99
    assert rates[("sum", 7)] > 0.99
    assert rates[("aph", 20)] >= rates[("baseline", 20)]
    # APH >= SUM at the paper's headline width.
    assert rates[("aph", 20)] >= rates[("sum", 20)] - 1e-4
    # Learning beats pinning arbitrary points.
    assert rates[("aph", 5)] > rates[("baseline", 5)]
    benchmark(
        lambda: [SkylinePruner(dims=2, points=5).process(p) for p in points[:5000]]
    )


def test_fig10c_topn(benchmark):
    stream = revenue_stream(200_000, seed=3)
    n = 250
    det = TopNDeterministicPruner(n=n, thresholds=4)
    det.survivors(stream)
    rand = TopNRandomizedPruner(n=n, rows=600, delta=1e-4, seed=3)
    rand.survivors(stream)
    opt = opt_topn_rate(stream, n)
    rows = [
        ("deterministic w=4", f"{det.stats.pruning_rate:.4%}",
         _unpruned(det.stats.pruning_rate)),
        (f"randomized d=600 w={rand.cols}", f"{rand.stats.pruning_rate:.4%}",
         _unpruned(rand.stats.pruning_rate)),
        ("OPT", f"{opt:.4%}", _unpruned(opt)),
    ]
    emit("fig10c_topn", table(["algorithm", "pruned", "unpruned frac"], rows))

    # The randomized algorithm's 0.01% failure allowance buys pruning.
    assert rand.stats.pruning_rate > det.stats.pruning_rate
    assert rand.stats.pruning_rate > 0.85
    assert opt >= rand.stats.pruning_rate
    benchmark(
        lambda: TopNRandomizedPruner(n=n, rows=600, delta=1e-4, seed=4).survivors(
            stream[:20_000]
        )
    )


def test_fig10d_groupby(benchmark):
    stream = keyed_values(100_000, 100, seed=4)
    opt = opt_groupby_rate(stream, "max")
    rows = []
    rates = {}
    for stages in (1, 3, 6, 9):
        pruner = GroupByPruner(rows=4096, cols=stages)
        pruner.survivors(stream)
        rates[stages] = pruner.stats.pruning_rate
        rows.append((stages, f"{rates[stages]:.4%}", _unpruned(rates[stages])))
    rows.append(("OPT", f"{opt:.4%}", _unpruned(opt)))
    emit("fig10d_groupby", table(["stages", "pruned", "unpruned frac"], rows))

    # 99% pruning with 3 stages; 9 stages discards all unnecessary entries.
    assert rates[3] > 0.99
    assert rates[9] == pytest.approx(opt, abs=1e-4)
    assert all(rates[s] <= opt + 1e-9 for s in rates)
    benchmark(lambda: GroupByPruner(rows=512, cols=3).survivors(stream[:20_000]))


def test_fig10e_join(benchmark):
    # Keys-to-bits ratios mirror the paper's 1-16 MB sweep over ~5M keys.
    left, right = overlapping_key_sets(100_000, 100_000, overlap=0.1, seed=5)
    opt = opt_join_rate(left, right)
    rows = []
    rates = {}
    for variant in ("bf", "rbf"):
        for kb in (32, 128, 512, 2048):
            pruner = JoinPruner(
                "L", "R", memory_bits=kb * 1024 * 8, variant=variant, seed=5
            )
            pruner.build(left, right)
            survived = sum(
                1
                for side, keys in (("L", left), ("R", right))
                for k in keys
                if pruner.process((side, k)) is PruneDecision.FORWARD
            )
            rates[(variant, kb)] = 1 - survived / (len(left) + len(right))
            rows.append(
                (
                    variant.upper(),
                    f"{kb} KB",
                    f"{rates[(variant, kb)]:.4%}",
                    _unpruned(rates[(variant, kb)]),
                )
            )
    rows.append(("OPT", "-", f"{opt:.4%}", _unpruned(opt)))
    emit("fig10e_join", table(["variant", "memory", "pruned", "unpruned frac"], rows))

    for variant in ("bf", "rbf"):
        series = [rates[(variant, kb)] for kb in (32, 128, 512, 2048)]
        assert series == sorted(series), f"{variant}: more memory, more pruning"
        assert rates[(variant, 2048)] == pytest.approx(opt, abs=0.002)
    # BF and RBF are close at the largest size (paper: "quite close").
    assert abs(rates[("bf", 2048)] - rates[("rbf", 2048)]) < 0.01
    benchmark(lambda: JoinPruner("L", "R", memory_bits=1 << 16).build(
        left[:5000], right[:5000]
    ))


def test_fig10f_having(benchmark):
    stream = [(k, float(int(v))) for k, v in keyed_values(50_000, 25, seed=6, skew=1.0)]
    threshold = 60_000.0  # only the few hottest keys qualify
    opt = opt_having_rate(stream, threshold)
    rows = []
    rates = {}
    for width in (128, 512, 1024, 2048):
        pruner = HavingPruner(threshold=threshold, width=width, depth=3)
        pruner.survivors(stream)
        rates[width] = pruner.stats.pruning_rate
        rows.append((width, f"{rates[width]:.4%}", _unpruned(rates[width])))
    rows.append(("OPT", f"{opt:.4%}", _unpruned(opt)))
    emit("fig10f_having", table(["counters/row", "pruned", "unpruned frac"], rows))

    # Near-perfect pruning from 512 counters per row on.
    assert rates[512] > 0.999
    assert rates[1024] > 0.999
    series = [rates[w] for w in (128, 512, 1024, 2048)]
    assert series == sorted(series)
    benchmark(
        lambda: HavingPruner(threshold=threshold, width=512).survivors(stream[:10_000])
    )
