"""Shared helpers for the experiment benchmarks.

Every ``bench_*`` module reproduces one table or figure of the paper: it
computes the series, renders a text table, writes it to
``benchmarks/results/<name>.txt`` (so EXPERIMENTS.md can reference a
stable artifact), and prints it for ``pytest -s`` runs.  The
pytest-benchmark fixture times a representative kernel of each
experiment so ``pytest benchmarks/ --benchmark-only`` also yields
throughput numbers.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List, Optional, Sequence

RESULTS_DIR = Path(__file__).parent / "results"


def emit(name: str, lines: Iterable[str], metrics: Optional[dict] = None) -> str:
    """Write an experiment's table to results/<name>.txt and return it.

    A machine-readable companion, ``results/<name>.metrics.json``, is
    written alongside the table so CI can archive and schema-check the
    numbers behind every artifact.  ``metrics`` is either a
    ``MetricsRegistry.to_dict()`` payload or any JSON-serializable dict
    of benchmark figures; omitted, the envelope is still written (with
    an empty metrics object) so the artifact set stays uniform.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    text = "\n".join(lines) + "\n"
    (RESULTS_DIR / f"{name}.txt").write_text(text)
    envelope = {
        "benchmark": name,
        "artifact": f"{name}.txt",
        "metrics": metrics or {},
    }
    (RESULTS_DIR / f"{name}.metrics.json").write_text(
        json.dumps(envelope, indent=2, sort_keys=True) + "\n"
    )
    print(f"\n=== {name} ===")
    print(text)
    return text


def table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> List[str]:
    """Render an aligned text table."""
    materialized = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells):
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))
    lines = [fmt(list(headers)), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in materialized)
    return lines


def scaled_volumes(result, factor: float):
    """Scale a RunResult's phase volumes to paper-scale row counts.

    The simulator runs at laptop scale; completion-time *models* need the
    paper's volumes.  Pruning rates are taken from the simulated run (a
    conservative choice: DISTINCT/TOP N rates improve with scale, Fig. 11).
    """
    from repro.engine.cluster import PhaseVolume, RunResult

    return RunResult(
        query=result.query,
        output=None,
        phases=[
            PhaseVolume(
                p.name,
                streamed=int(p.streamed * factor),
                forwarded=int(p.forwarded * factor),
            )
            for p in result.phases
        ],
        used_cheetah=result.used_cheetah,
        workers=result.workers,
        op_kind=result.op_kind,
    )
