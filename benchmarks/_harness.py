"""Shared helpers for the experiment benchmarks.

Every ``bench_*`` module reproduces one table or figure of the paper: it
computes the series, renders a text table, writes it to
``benchmarks/results/<name>.txt`` (so EXPERIMENTS.md can reference a
stable artifact), and prints it for ``pytest -s`` runs.  The
pytest-benchmark fixture times a representative kernel of each
experiment so ``pytest benchmarks/ --benchmark-only`` also yields
throughput numbers.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

RESULTS_DIR = Path(__file__).parent / "results"


def env_int(name: str, default: int) -> int:
    """An integer benchmark knob from the environment (CI smoke sizing)."""
    return int(os.environ.get(name, str(default)))


def chunks(array, size: int) -> list:
    """Split an array (or aligned tuple of arrays) into ``size``-row chunks."""
    length = len(array[0]) if isinstance(array, tuple) else len(array)
    if isinstance(array, tuple):
        return [
            tuple(part[i : i + size] for part in array)
            for i in range(0, length, size)
        ]
    return [array[i : i + size] for i in range(0, length, size)]


def best_of(run: Callable[[], object], reps: int) -> Tuple[float, object]:
    """``(best wall seconds, last result)`` over ``reps`` runs of ``run``.

    Best-of (not mean) is the standard noise filter for short single-host
    races: thermal throttling and noisy neighbours only ever slow a run
    down, so the minimum is the cleanest estimate of the true cost.
    """
    best, result = float("inf"), None
    for _ in range(max(1, reps)):
        start = time.perf_counter()
        result = run()
        best = min(best, time.perf_counter() - start)
    return best, result


def bench_streams(n: int) -> Dict[str, "object"]:
    """The shared synthetic columns the throughput-style benches stream.

    Fixed seeds so every benchmark measures the same data: ``keys`` is
    ~n/10 distinct ids in random arrival order (DISTINCT food),
    ``values`` a revenue-like float column (filters / TOP N / GROUP BY
    aggregates), ``group_keys`` zipfian ids (~n/100 distinct), ``qty``
    small integers (a second filter column).
    """
    import numpy as np

    from repro.workloads.synthetic import (
        random_order_stream,
        revenue_stream,
        zipf_keys,
    )

    return {
        "keys": np.asarray(
            random_order_stream(n, max(1, n // 10), seed=11), dtype=np.int64
        ),
        "values": np.asarray(revenue_stream(n, seed=12), dtype=np.float64),
        "group_keys": np.asarray(
            zipf_keys(n, max(1, n // 100), seed=13), dtype=np.int64
        ),
        "qty": np.asarray(
            random_order_stream(n, 50, seed=14), dtype=np.int64
        ),
    }


def emit(name: str, lines: Iterable[str], metrics: Optional[dict] = None) -> str:
    """Write an experiment's table to results/<name>.txt and return it.

    A machine-readable companion, ``results/<name>.metrics.json``, is
    written alongside the table so CI can archive and schema-check the
    numbers behind every artifact.  ``metrics`` is either a
    ``MetricsRegistry.to_dict()`` payload or any JSON-serializable dict
    of benchmark figures; omitted, the envelope is still written (with
    an empty metrics object) so the artifact set stays uniform.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    text = "\n".join(lines) + "\n"
    (RESULTS_DIR / f"{name}.txt").write_text(text)
    envelope = {
        "benchmark": name,
        "artifact": f"{name}.txt",
        "metrics": metrics or {},
    }
    (RESULTS_DIR / f"{name}.metrics.json").write_text(
        json.dumps(envelope, indent=2, sort_keys=True) + "\n"
    )
    print(f"\n=== {name} ===")
    print(text)
    return text


def table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> List[str]:
    """Render an aligned text table."""
    materialized = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells):
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))
    lines = [fmt(list(headers)), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in materialized)
    return lines


def scaled_volumes(result, factor: float):
    """Scale a RunResult's phase volumes to paper-scale row counts.

    The simulator runs at laptop scale; completion-time *models* need the
    paper's volumes.  Pruning rates are taken from the simulated run (a
    conservative choice: DISTINCT/TOP N rates improve with scale, Fig. 11).
    """
    from repro.engine.cluster import PhaseVolume, RunResult

    return RunResult(
        query=result.query,
        output=None,
        phases=[
            PhaseVolume(
                p.name,
                streamed=int(p.streamed * factor),
                forwarded=int(p.forwarded * factor),
            )
            for p in result.phases
        ],
        used_cheetah=result.used_cheetah,
        workers=result.workers,
        op_kind=result.op_kind,
    )
