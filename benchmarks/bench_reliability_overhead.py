"""Reliability-protocol overhead vs loss rate (a §7.2 ablation).

Not a paper figure — the paper states the protocol and its guarantees;
this bench quantifies the retransmission tax: transmissions per entry,
convergence rounds, pruned retransmissions slipping to the master, and
the (verified) exactness of the completed DISTINCT query, for independent
and bursty (Gilbert-Elliott) loss.
"""

from __future__ import annotations

import random

from repro.core.distinct import DistinctPruner, master_distinct
from repro.net.reliability import (
    GilbertElliottLink,
    ReliableTransfer,
    packets_for,
)

from _harness import emit, table

ENTRIES = 400


def _run(loss: float, seed: int, bursty: bool = False, window=None):
    rng = random.Random(seed)
    entries = [rng.randrange(80) for _ in range(ENTRIES)]
    transfer = ReliableTransfer(
        DistinctPruner(rows=16, cols=2), loss=loss, seed=seed, window=window
    )
    if bursty:
        shared = random.Random(seed ^ 0xB025)
        for attr in ("uplink", "downlink", "ack_switch_link", "ack_master_link"):
            setattr(
                transfer,
                attr,
                GilbertElliottLink(shared, good_loss=loss / 4, bad_loss=min(0.9, loss * 3)),
            )
    transfer.run(packets_for(entries))
    exact = set(master_distinct(transfer.master_unique_entries)) == set(entries)
    return transfer.stats, exact


def test_reliability_overhead(benchmark):
    rows = []
    overheads = []
    for loss in (0.0, 0.05, 0.15, 0.3):
        stats, exact = _run(loss, seed=int(loss * 100) + 1)
        tx_per_entry = stats.transmissions / ENTRIES
        overheads.append(tx_per_entry)
        rows.append(
            (
                f"{loss:.0%} iid",
                f"{tx_per_entry:.2f}",
                stats.rounds,
                stats.duplicates_at_master,
                "exact" if exact else "WRONG",
            )
        )
    stats_windowed, exact_windowed = _run(0.15, seed=16, window=32)
    rows.append(
        (
            "15% iid, W=32",
            f"{stats_windowed.transmissions / ENTRIES:.2f}",
            stats_windowed.rounds,
            stats_windowed.duplicates_at_master,
            "exact" if exact_windowed else "WRONG",
        )
    )
    stats, exact = _run(0.15, seed=99, bursty=True)
    rows.append(
        (
            "bursty (GE)",
            f"{stats.transmissions / ENTRIES:.2f}",
            stats.rounds,
            stats.duplicates_at_master,
            "exact" if exact else "WRONG",
        )
    )
    lines = table(
        ["loss", "tx/entry", "rounds", "dup seqs", "query output"], rows
    )
    emit("reliability_overhead", lines)

    # No loss: exactly one transmission per entry, one round.
    assert overheads[0] == 1.0
    # Overhead grows with loss but stays bounded; output always exact.
    assert overheads == sorted(overheads)
    assert all(row[-1] == "exact" for row in rows)
    # Pacing the go-back-N window cuts wasted retransmissions.
    unwindowed = float(rows[2][1])
    windowed = float(rows[4][1])
    assert windowed < unwindowed
    benchmark(lambda: _run(0.1, seed=7))
