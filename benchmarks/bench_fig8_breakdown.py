"""Figure 8: completion-time breakdown at 10G vs 20G NIC limits.

The paper's claim: Cheetah is network-bound — doubling the NIC roughly
halves its completion — while Spark is compute-bound and does not improve
with a faster NIC.  Cheetah's time concentrates in sending; Spark's in
worker computation.
"""

from __future__ import annotations

from repro.engine.cluster import Cluster
from repro.engine.cost import CostModel
from repro.workloads import bigdata

from _harness import emit, scaled_volumes, table


def _groupby_run():
    scale = bigdata.BigDataScale(
        rankings_rows=20_000, uservisits_rows=40_000, distinct_urls=8000
    )
    tables = bigdata.tables(scale)
    result = Cluster(workers=5).run_verified(bigdata.query5_groupby(), tables)
    return scaled_volumes(result, 31_700_000 / 40_000)


def test_fig8_breakdown(benchmark):
    result = _groupby_run()
    rows = []
    totals = {}
    for gbps in (10, 20):
        model = CostModel(network_gbps=gbps)
        cheetah = model.cheetah_breakdown(result)
        spark = model.spark_breakdown(result, first_run=False)
        totals[("cheetah", gbps)] = cheetah
        totals[("spark", gbps)] = spark
        for system, b in (("cheetah", cheetah), ("spark", spark)):
            rows.append(
                (
                    f"{system}@{gbps}G",
                    f"{b.worker:.2f}s",
                    f"{b.network:.2f}s",
                    f"{b.master:.2f}s",
                    f"{b.total:.2f}s",
                )
            )
    lines = table(["system", "worker", "send", "master", "total"], rows)
    emit("fig8_breakdown", lines)

    cheetah10, cheetah20 = totals[("cheetah", 10)], totals[("cheetah", 20)]
    spark10, spark20 = totals[("spark", 10)], totals[("spark", 20)]
    # Cheetah approaches 2x at 20G (network-bound; the residual serial
    # serialization segment keeps the modeled ratio slightly below 2).
    assert 1.45 < cheetah10.total / cheetah20.total <= 2.1
    # Spark does not improve with a faster NIC (compute-bound).
    assert abs(spark10.total - spark20.total) / spark10.total < 0.05
    # Cheetah's time is dominated by sending; Spark's by the workers.
    assert cheetah10.network > cheetah10.worker
    assert spark10.worker > spark10.network
    benchmark(lambda: CostModel(network_gbps=20).cheetah_breakdown(result).total)
