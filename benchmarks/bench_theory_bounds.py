"""Ablations: the paper's theorems against empirical behaviour.

Not a paper figure — this bench validates the analytical machinery the
randomized algorithms are sized with (DESIGN.md's ablation row):

* Theorem 1 — DISTINCT duplicate-pruning lower bound vs measurement;
* Theorem 2 — randomized TOP N failure rate across seeds stays under a
  generous multiple of delta;
* Theorem 3 — expected TOP N survivor count vs measurement;
* Theorem 4 — fingerprint widths prevent same-row collisions;
* Lambert-W optimum — the (d, w) minimizing d*w is at least as small as
  the paper's fixed-d example configurations;
* Count-Min conservative update — tighter but still one-sided.
"""

from __future__ import annotations

import random

import pytest

from repro.core.distinct import DistinctPruner, FingerprintDistinctPruner
from repro.core.sizing import (
    TopNConfig,
    distinct_expected_pruning,
    topn_expected_unpruned,
)
from repro.core.topn import TopNRandomizedPruner, master_topn
from repro.sketches.countmin import CountMinSketch
from repro.workloads.synthetic import random_order_stream

from _harness import emit, table


def test_theorem1_distinct_bound(benchmark):
    d, w = 64, 2
    distinct = 2000  # satisfies D > d ln(200 d)
    stream = random_order_stream(40_000, distinct, seed=21)
    pruner = DistinctPruner(rows=d, cols=w)
    survivors = pruner.survivors(stream)
    duplicates = len(stream) - distinct
    measured = (len(stream) - len(survivors)) / duplicates
    bound = distinct_expected_pruning(distinct, d, w)
    emit(
        "theory_thm1_distinct",
        table(
            ["quantity", "value"],
            [
                ("Theorem 1 lower bound", f"{bound:.3f}"),
                ("measured duplicate pruning", f"{measured:.3f}"),
            ],
        ),
    )
    assert measured >= bound * 0.9  # single-run slack on an expectation bound
    benchmark(lambda: distinct_expected_pruning(distinct, d, w))


def test_theorem2_failure_rate(benchmark):
    # delta = 5% so failures are observable across 60 seeds; the measured
    # rate must stay within a small multiple of delta.
    n, rows, delta, trials = 50, 256, 0.05, 60
    stream_rng = random.Random(99)
    stream = [stream_rng.random() for _ in range(5000)]
    expected_top = sorted(master_topn(stream, n))
    failures = 0
    for seed in range(trials):
        pruner = TopNRandomizedPruner(n=n, rows=rows, delta=delta, seed=seed)
        survivors = pruner.survivors(stream)
        if sorted(master_topn(survivors, n)) != expected_top:
            failures += 1
    emit(
        "theory_thm2_failures",
        table(
            ["quantity", "value"],
            [
                ("delta", delta),
                ("trials", trials),
                ("observed failures", failures),
                ("observed rate", f"{failures / trials:.3f}"),
            ],
        ),
    )
    assert failures / trials <= delta * 3
    benchmark(lambda: TopNConfig.for_rows(n, delta, rows))


def test_theorem3_survivor_count(benchmark):
    rows, cols, m = 64, 6, 40_000
    rng = random.Random(31)
    stream = [rng.random() for _ in range(m)]
    counts = []
    for seed in range(5):
        pruner = TopNRandomizedPruner(n=20, rows=rows, cols=cols, seed=seed)
        counts.append(len(pruner.survivors(stream)))
    bound = topn_expected_unpruned(m, rows, cols)
    mean = sum(counts) / len(counts)
    emit(
        "theory_thm3_survivors",
        table(
            ["quantity", "value"],
            [
                ("Theorem 3 expected bound", f"{bound:.0f}"),
                ("measured mean survivors", f"{mean:.0f}"),
                ("measured runs", counts),
            ],
        ),
    )
    assert mean <= bound * 1.2
    benchmark(lambda: topn_expected_unpruned(m, rows, cols))


def test_theorem4_fingerprints(benchmark):
    # Theorem-4-sized fingerprints: no distinct value lost on any of 5 runs.
    distinct, rows = 5000, 256
    losses = 0
    for seed in range(5):
        stream = random_order_stream(20_000, distinct, seed=seed)
        pruner = FingerprintDistinctPruner(
            rows=rows, cols=2, expected_distinct=distinct, delta=1e-4, seed=seed
        )
        survivors = set(pruner.survivors(stream))
        losses += distinct - len(survivors)
    emit(
        "theory_thm4_fingerprints",
        table(
            ["quantity", "value"],
            [
                ("fingerprint bits", pruner.scheme.bits),
                ("distinct values lost (5 runs)", losses),
            ],
        ),
    )
    assert losses == 0
    benchmark(lambda: FingerprintDistinctPruner(
        rows=rows, cols=2, expected_distinct=distinct
    ))


def test_lambertw_space_optimum(benchmark):
    config = TopNConfig.optimal(1000, 1e-4)
    fixed_600 = TopNConfig.for_rows(1000, 1e-4, 600)
    fixed_8000 = TopNConfig.for_rows(1000, 1e-4, 8000)
    emit(
        "theory_lambertw_optimum",
        table(
            ["configuration", "d", "w", "cells d*w"],
            [
                ("Lambert-W optimum", config.rows, config.cols, config.matrix_cells),
                ("paper d=600", 600, fixed_600.cols, fixed_600.matrix_cells),
                ("paper d=8000", 8000, fixed_8000.cols, fixed_8000.matrix_cells),
            ],
        ),
    )
    assert config.matrix_cells <= fixed_600.matrix_cells
    assert config.matrix_cells <= fixed_8000.matrix_cells
    benchmark(lambda: TopNConfig.optimal(1000, 1e-4))


def test_conservative_countmin_ablation(benchmark):
    # Conservative update keeps one-sidedness while tightening estimates —
    # a documented extension beyond the paper's plain Count-Min.
    rng = random.Random(77)
    stream = [(rng.randrange(300), rng.randrange(1, 10)) for _ in range(20_000)]
    truth = {}
    plain = CountMinSketch(width=128, depth=3, seed=1)
    conservative = CountMinSketch(width=128, depth=3, conservative=True, seed=1)
    for key, amount in stream:
        plain.add(key, amount)
        conservative.add(key, amount)
        truth[key] = truth.get(key, 0) + amount
    plain_err = sum(plain.estimate(k) - v for k, v in truth.items())
    cons_err = sum(conservative.estimate(k) - v for k, v in truth.items())
    emit(
        "theory_conservative_cms",
        table(
            ["sketch", "total overestimate"],
            [("plain", plain_err), ("conservative", cons_err)],
        ),
    )
    assert cons_err <= plain_err
    assert all(conservative.estimate(k) >= v for k, v in truth.items())
    benchmark(lambda: CountMinSketch(width=128, depth=3).add(1, 1))
