"""Figure 9: master completion time vs pruning rate (DISTINCT, max-GROUP BY).

The master handles each arriving entry immediately when almost everything
is pruned; at low pruning rates entries buffer up, so completion grows
*super-linearly* in the unpruned share.  This bench sweeps the pruning
rate and both measures the modeled curve and checks its curvature.
"""

from __future__ import annotations

from repro.engine.cluster import PhaseVolume, RunResult
from repro.engine.cost import CostModel

from _harness import emit, table

TOTAL = 10_000_000


def _run_at(pruning_rate: float, op_kind: str) -> RunResult:
    forwarded = int(TOTAL * (1.0 - pruning_rate))
    return RunResult(
        query=f"{op_kind}@{pruning_rate:.2f}",
        output=None,
        phases=[PhaseVolume("stream", streamed=TOTAL, forwarded=forwarded)],
        used_cheetah=True,
        workers=5,
        op_kind=op_kind,
    )


def test_fig9_master_time(benchmark):
    model = CostModel()
    rates = (0.999, 0.99, 0.95, 0.9, 0.75, 0.5, 0.25, 0.0)
    rows = []
    curves = {}
    for op_kind in ("distinct", "groupby"):
        times = []
        for rate in rates:
            b = model.cheetah_breakdown(_run_at(rate, op_kind))
            times.append(b.master)
        curves[op_kind] = times
        rows.extend(
            (op_kind, f"{rate:.1%}", f"{t:.3f}s")
            for rate, t in zip(rates, times)
        )
    lines = table(["operator", "pruning rate", "master time"], rows)
    emit("fig9_master_time", lines)

    for op_kind, times in curves.items():
        # Monotone: lower pruning -> more master time.
        assert times == sorted(times), op_kind
        # Super-linear: halving the pruning from 50% to 0% more than
        # doubles the master time.
        idx50, idx0 = rates.index(0.5), rates.index(0.0)
        assert times[idx0] > 2 * times[idx50], op_kind
    benchmark(lambda: model.cheetah_breakdown(_run_at(0.5, "distinct")).master)
