"""Ablations for the §9 extensions and design choices DESIGN.md calls out.

* Multi-entry packets — network frames drop ~k×, pruning nearly intact
  (row-mates of a packet are forwarded unprocessed, a small toll).
* Switch trees — a two-level hierarchy prunes more than a single
  resource-equal switch slice.
* LRU vs FIFO — LRU wins on skewed (hot-key) streams, ties on uniform.
* Worker-assist filtering — exact dataplane filtering vs relaxed-formula
  pruning plus master cleanup.
"""

from __future__ import annotations

import random

import pytest

from repro.core.base import PruneDecision
from repro.core.distinct import DistinctPruner
from repro.core.filtering import And, Atom, FilterPruner, Or, Var
from repro.engine.cost import CostModel
from repro.extensions.multientry import MultiEntryPruner
from repro.extensions.multiswitch import SwitchTree
from repro.workloads.synthetic import random_order_stream

from _harness import emit, table


def test_ablation_multientry_packing(benchmark):
    stream = random_order_stream(50_000, 800, seed=41)
    rows = []
    baseline_rate = None
    for k in (1, 2, 4, 8):
        pruner = DistinctPruner(rows=1024, cols=2, seed=41)
        adapter = MultiEntryPruner(
            pruner, row_of=pruner._matrix.row_of, entries_per_packet=k
        )
        adapter.prune_stream(stream)
        rate = adapter.stats.pruning_rate
        if k == 1:
            baseline_rate = rate
        frames = adapter.packets_sent(len(stream))
        model = CostModel(entries_per_packet=k)
        wire = model._wire_seconds(len(stream)) * 1000
        rows.append(
            (
                k,
                frames,
                f"{wire:.2f} ms",
                f"{rate:.4%}",
                adapter.unprocessed_forwards,
            )
        )
    lines = table(
        ["entries/packet", "frames", "wire time", "pruned", "unprocessed fwds"],
        rows,
    )
    emit("ablation_multientry", lines)
    # k=8 keeps pruning within 2 points of k=1 while cutting frames 8x.
    last_rate = float(rows[-1][3].rstrip("%")) / 100
    assert baseline_rate - last_rate < 0.02
    assert rows[-1][1] == (len(stream) + 7) // 8
    benchmark(lambda: MultiEntryPruner(
        DistinctPruner(rows=64, cols=2),
        row_of=lambda v: 0,
        entries_per_packet=4,
    ))


def test_ablation_switch_tree(benchmark):
    stream = random_order_stream(40_000, 3000, seed=43)
    # Budget: 5 switch slices of d=128 each.  Single switch gets one
    # slice; the tree gets 4 leaves + 1 root of the same slice size.
    single = DistinctPruner(rows=128, cols=2, seed=1)
    single.survivors(stream)
    tree = SwitchTree(
        leaves=[DistinctPruner(rows=128, cols=2, seed=i) for i in range(4)],
        root=DistinctPruner(rows=128, cols=2, seed=9),
    )
    tree.survivors(list(stream))
    lines = table(
        ["topology", "state slices", "pruned"],
        [
            ("single switch", 1, f"{single.stats.pruning_rate:.4%}"),
            ("4 leaves + root", 5, f"{tree.stats.pruning_rate:.4%}"),
        ],
    )
    emit("ablation_switch_tree", lines)
    assert tree.stats.pruning_rate > single.stats.pruning_rate
    benchmark(lambda: tree.process(1))


def test_ablation_lru_vs_fifo(benchmark):
    rng = random.Random(45)
    # Skewed: 80% of traffic hits 20 hot values; uniform for contrast.
    skewed = [
        rng.randrange(20) if rng.random() < 0.8 else rng.randrange(100_000)
        for _ in range(40_000)
    ]
    uniform = random_order_stream(40_000, 2000, seed=45)
    rows = []
    rates = {}
    for name, stream in (("skewed", skewed), ("uniform", uniform)):
        for policy in ("lru", "fifo"):
            pruner = DistinctPruner(rows=16, cols=2, policy=policy, seed=3)
            pruner.survivors(stream)
            rates[(name, policy)] = pruner.stats.pruning_rate
            rows.append((name, policy.upper(), f"{rates[(name, policy)]:.4%}"))
    emit("ablation_lru_fifo", table(["stream", "policy", "pruned"], rows))
    # LRU keeps hot values cached under skew; FIFO churns them out.
    assert rates[("skewed", "lru")] > rates[("skewed", "fifo")]
    # On uniform streams the policies are within noise of each other.
    assert abs(rates[("uniform", "lru")] - rates[("uniform", "fifo")]) < 0.05
    benchmark(lambda: DistinctPruner(rows=16, cols=2).survivors(skewed[:5000]))


def test_ablation_worker_assist_filter(benchmark):
    taste = Var(Atom("taste>5", lambda e: e[0] > 5))
    texture = Var(Atom("texture>4", lambda e: e[1] > 4))
    name_like = Var(Atom("name LIKE e%s", lambda e: e[2], supported=False))
    formula = Or(taste, And(texture, name_like))
    rng = random.Random(47)
    entries = [
        (rng.randrange(10), rng.randrange(10), rng.random() < 0.1)
        for _ in range(30_000)
    ]
    relaxed = FilterPruner(formula, worker_assist=False)
    assisted = FilterPruner(formula, worker_assist=True)
    relaxed_fwd = sum(
        1 for e in entries if relaxed.process(e) is PruneDecision.FORWARD
    )
    assisted_fwd = sum(
        1 for e in entries if assisted.process(e) is PruneDecision.FORWARD
    )
    exact = sum(1 for e in entries if formula.evaluate(e))
    lines = table(
        ["mode", "forwarded", "exact matches", "master cleanup"],
        [
            ("switch-only (relaxed)", relaxed_fwd, exact, relaxed_fwd - exact),
            ("worker assist (exact)", assisted_fwd, exact, assisted_fwd - exact),
        ],
    )
    emit("ablation_worker_assist", lines)
    assert assisted_fwd == exact          # exact dataplane filtering
    assert relaxed_fwd >= exact           # relaxed is a sound over-approximation
    assert relaxed_fwd > assisted_fwd     # ...but leaves cleanup to the master
    benchmark(lambda: assisted.process((1, 9, True)))


def test_ablation_packed_queries(benchmark):
    """§6 packing: one streaming pass serves several queries at once."""
    from repro.engine.cluster import Cluster
    from repro.engine.expressions import col
    from repro.engine.plan import CountOp, DistinctOp, GroupByOp, Query
    from repro.workloads import bigdata

    tables = bigdata.tables(
        bigdata.BigDataScale(rankings_rows=5000, uservisits_rows=20_000)
    )
    queries = [
        Query(DistinctOp("UserVisits", ("userAgent",))),
        Query(GroupByOp("UserVisits", "userAgent", "adRevenue", "max")),
        Query(CountOp("UserVisits", col("duration") > 1800)),
    ]
    cluster = Cluster(workers=5)
    solo_streamed = sum(cluster.run(q, tables).total_streamed for q in queries)
    packed = cluster.run_packed(queries, tables)
    lines = table(
        ["execution", "entries streamed", "pruned"],
        [
            ("three separate passes", solo_streamed, "-"),
            ("packed single pass", packed.total_streamed,
             f"{packed.pruning_rate:.2%}"),
        ],
    )
    emit("ablation_packed_queries", lines)
    assert packed.total_streamed * 3 == solo_streamed
    from repro.engine.reference import run_reference

    for query, result in zip(queries, packed.results):
        assert result.output == run_reference(query, tables)
    benchmark(lambda: cluster.run_packed(queries[:2], tables))
