"""Fleet serving: locality routing, tenant fairness, rolling updates.

Three measurements over the :mod:`repro.fleet` subsystem, all at equal
correctness (every answer is asserted equal to the reference executor's
output before any number is recorded):

* **locality** — a mixed-tenant workload over a two-ToR/one-spine
  fabric with two replicas.  The router places each request by table
  homing (tables hash onto ToRs; the replica on the home ToR holds the
  table shared-memory resident), so the gated figure is the locality
  hit fraction against the 1/replicas baseline random placement would
  achieve.  Per-tenant p50/p99 latency (merged across replicas
  bucket-by-bucket) rides along, and zero cross-tenant starvation is
  asserted.
* **fairness** — an A/B on one replica: a flooding tenant enqueues a
  deep backlog while the service is paused, a quiet tenant adds one
  request last, then the scheduler is released.  Under FIFO the quiet
  request completes after the entire flood; under the weighted-fair
  policy it leads a slot within a couple of selection rounds.  The
  gated figure is the completion-position ratio (FIFO position /
  weighted-fair position) — deterministic by construction, since the
  whole backlog is formed before the first slot pops.
* **rolling update** — the fleet swaps to regenerated tables
  replica-by-replica *under load*: clients keep issuing requests
  throughout, every in-window answer must match the old or the new
  tables' reference output, at least one replica stays active at every
  step (asserted via ``last_update_kept_capacity``), and post-update
  answers must match the new tables exactly.
"""

from __future__ import annotations

import threading

from repro.engine.cluster import ClusterConfig
from repro.engine.reference import run_reference
from repro.engine.sql import parse
from repro.fleet import (
    FabricTopology,
    FleetController,
    TenantQuota,
    WeightedFairPolicy,
)
from repro.serve import QueryService, ServeClient
from repro.workloads import bigdata

from _harness import emit, env_int, table

ROWS = env_int("CHEETAH_BENCH_FLEET_N", 4000)
REQUESTS_PER_TENANT = env_int("CHEETAH_BENCH_FLEET_REQUESTS", 6)
FLOOD = env_int("CHEETAH_BENCH_FLEET_FLOOD", 20)
TENANTS = 3
REPLICAS = 2

#: The mixed fleet workload: packable single-pass queries over both
#: tables, so locality routing has two distinct table homes to resolve.
_WORKLOAD = (
    "SELECT COUNT(*) FROM UserVisits WHERE duration > 30",
    "SELECT DISTINCT userAgent FROM UserVisits",
    "SELECT userAgent, MAX(adRevenue) FROM UserVisits GROUP BY userAgent",
    "SELECT COUNT(*) FROM Rankings WHERE avgDuration < 10",
    "SELECT TOP 20 duration FROM UserVisits ORDER BY adRevenue DESC",
    "SELECT COUNT(*) FROM Rankings WHERE pageRank > 50",
)


def _tables(seed: int) -> dict:
    scale = bigdata.BigDataScale(
        rankings_rows=max(500, ROWS // 2),
        uservisits_rows=ROWS,
        distinct_urls=max(200, ROWS // 5),
    )
    return bigdata.tables(scale, seed=seed)


def _drive(fleet, tenants, per_tenant, expected, mismatches):
    """Run ``tenants`` client threads against the fleet; join them all."""
    def loop(index: int) -> None:
        client = ServeClient(
            fleet, tenant=f"tenant-{index}", retries=3, seed=index
        )
        for i in range(per_tenant):
            sql = _WORKLOAD[(index + i) % len(_WORKLOAD)]
            output = client.query(sql)
            if output != expected[sql]:
                mismatches.append(sql)

    threads = [
        threading.Thread(target=loop, args=(i,), daemon=True)
        for i in range(tenants)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


def _fairness_position(tables, fair: bool) -> int:
    """Completion position of the quiet tenant's request (0-indexed).

    The backlog is fully formed while the scheduler is paused and the
    executor runs one slot at a time, so completion order equals
    slot-formation order and the position is deterministic.
    """
    policy = WeightedFairPolicy(starvation_rounds=max(8, FLOOD * 2)) if fair else None
    service = QueryService(
        tables,
        workers=3,
        config=ClusterConfig(seed=0, resident=False),
        max_queue=FLOOD + 8,
        worker_threads=1,
        enable_packing=False,
        fairness=policy,
    )
    try:
        service.pause()
        flood = [
            service.submit(
                parse(f"SELECT COUNT(*) FROM UserVisits WHERE duration > {i}"),
                tenant="flood",
            )
            for i in range(FLOOD)
        ]
        quiet = service.submit(
            parse("SELECT COUNT(*) FROM Rankings WHERE pageRank > 10"),
            tenant="quiet",
        )
        service.resume()
        for ticket in flood:
            ticket.result()
        quiet.result()
        completed = sorted(
            flood + [quiet], key=lambda t: t.timeline["completed"]
        )
        position = completed.index(quiet)
        if policy is not None:
            assert policy.snapshot()["starvation_events"] == 0, (
                "weighted-fair arm must not starve anyone"
            )
        return position
    finally:
        service.shutdown(drain=True)


def test_fleet_report():
    tables = _tables(seed=7)
    expected = {sql: run_reference(parse(sql), tables) for sql in _WORKLOAD}
    topology = FabricTopology.two_tier(tors=2, spines=1)
    assert len(topology) >= 3

    fleet = FleetController(
        tables,
        topology=topology,
        replicas=REPLICAS,
        quota=TenantQuota(max_share=0.5),
        saturation=64,
        max_queue=64,
        seed=7,
    )
    mismatches: list = []
    _drive(fleet, TENANTS, REQUESTS_PER_TENANT, expected, mismatches)
    assert not mismatches, f"fleet answers diverged on: {mismatches}"

    # Rolling update under load: clients keep querying while tables swap.
    new_tables = _tables(seed=8)
    expected_new = {
        sql: run_reference(parse(sql), new_tables) for sql in _WORKLOAD
    }
    window_errors: list = []

    def window_loop(index: int) -> None:
        client = ServeClient(
            fleet, tenant=f"tenant-{index}", retries=3, seed=100 + index
        )
        for i in range(REQUESTS_PER_TENANT):
            sql = _WORKLOAD[(index + i) % len(_WORKLOAD)]
            output = client.query(sql)
            if output != expected[sql] and output != expected_new[sql]:
                window_errors.append(sql)

    window_threads = [
        threading.Thread(target=window_loop, args=(i,), daemon=True)
        for i in range(TENANTS)
    ]
    for thread in window_threads:
        thread.start()
    version = fleet.rolling_update(new_tables)
    for thread in window_threads:
        thread.join()
    assert version == 1
    assert fleet.last_update_kept_capacity, (
        "rolling update must keep at least one replica active at every step"
    )
    assert not window_errors, (
        f"in-window answers matched neither table version: {window_errors}"
    )
    post = fleet.query("SELECT COUNT(*) FROM Rankings WHERE pageRank > 50")
    assert post == expected_new[
        "SELECT COUNT(*) FROM Rankings WHERE pageRank > 50"
    ]

    fleet.shutdown(drain=True)
    report = fleet.report()
    summary = report["summary"]
    assert summary["starvation_events"] == 0, "no tenant may starve"
    assert summary["failed"] == 0
    routes = summary["routes"]
    total_routes = sum(routes.values())
    locality_fraction = routes["locality"] / total_routes
    baseline_fraction = 1.0 / REPLICAS
    locality_speedup = locality_fraction / baseline_fraction
    assert locality_fraction > baseline_fraction, (
        f"locality routing ({locality_fraction:.2%}) must beat random "
        f"placement ({baseline_fraction:.2%})"
    )

    # Fairness A/B (single replica, deterministic backlog).
    fifo_pos = _fairness_position(tables, fair=False)
    fair_pos = _fairness_position(tables, fair=True)
    assert fifo_pos == FLOOD, "FIFO must serve the quiet tenant last"
    assert fair_pos <= 3, (
        f"weighted-fair must serve the quiet tenant within a few rounds, "
        f"got position {fair_pos}"
    )
    fairness_speedup = (fifo_pos + 1) / (fair_pos + 1)

    rows = []
    for tenant, figures in sorted(report["latency_ms"].items()):
        rows.append(
            [tenant, figures["count"], f"{figures['p50']:.2f}",
             f"{figures['p99']:.2f}"]
        )
    lines = table(["tenant", "requests", "p50 ms", "p99 ms"], rows)
    lines.append("")
    lines.append(
        f"fabric: {len(topology.tors)} ToR + {len(topology.spines)} spine "
        f"({len(topology)} switches), {REPLICAS} replicas, "
        f"{TENANTS} tenants x {2 * REQUESTS_PER_TENANT} requests"
    )
    lines.append(
        f"routing: {routes['locality']} locality / {routes['spillover']} "
        f"spillover / {routes['least-loaded']} least-loaded "
        f"({locality_fraction:.2%} locality vs {baseline_fraction:.2%} "
        f"random baseline = {locality_speedup:.2f}x)"
    )
    lines.append(
        f"fairness: quiet tenant completes at position {fifo_pos} under "
        f"FIFO vs {fair_pos} under weighted-fair over a {FLOOD}-deep "
        f"flood = {fairness_speedup:.2f}x; 0 starvation events fleet-wide"
    )
    lines.append(
        f"rolling update: v{version} under load, capacity retained, "
        f"{summary['cache_hits']} shared-cache hits, all answers exact "
        f"(old-or-new inside the window, new after)"
    )
    emit(
        "fleet",
        lines,
        {
            "rows": ROWS,
            "replicas": REPLICAS,
            "tenants": TENANTS,
            "switches": len(topology),
            "workloads": {
                "locality": {
                    "speedup": locality_speedup,
                    "fraction": locality_fraction,
                },
                "fairness": {
                    "speedup": fairness_speedup,
                    "fifo_position": fifo_pos,
                    "fair_position": fair_pos,
                },
            },
            "routes": routes,
            "latency_ms": report["latency_ms"],
            "starvation_events": summary["starvation_events"],
            "update_kept_capacity": summary["last_update_kept_capacity"],
        },
    )


if __name__ == "__main__":
    test_fleet_report()
