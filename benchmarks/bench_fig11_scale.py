"""Figure 11: pruning rate vs input size, one test per subplot.

Each data point processes a prefix of the same stream, exactly the
paper's methodology ("each data point refers to the first entries in the
relevant data set").  Expected directions (paper §8.3):

* DISTINCT, GROUP BY — improve with scale: the first occurrence of each
  key cannot be pruned, but once cached the structure prunes onward.
* SKYLINE, TOP N — improve with scale: the output is a shrinking
  fraction of the input.
* JOIN — degrades with scale: Bloom-filter false positives accumulate.
* HAVING — degrades with scale: the output is empty on small prefixes
  and Count-Min false positives grow with the data.
"""

from __future__ import annotations

import pytest

from repro.core.base import PruneDecision
from repro.core.distinct import DistinctPruner
from repro.core.groupby import GroupByPruner
from repro.core.having import HavingPruner
from repro.core.join import JoinPruner
from repro.core.skyline import SkylinePruner
from repro.core.topn import TopNRandomizedPruner
from repro.workloads.synthetic import (
    keyed_values,
    overlapping_key_sets,
    prefixes,
    random_order_stream,
    revenue_stream,
    uniform_points,
)

from _harness import emit, table

FRACTIONS = (0.1, 0.25, 0.5, 1.0)


def _sweep(name, stream, make_pruner):
    rows = []
    rates = []
    for prefix in prefixes(stream, FRACTIONS):
        pruner = make_pruner()
        pruner.survivors(prefix)
        rates.append(pruner.stats.pruning_rate)
        rows.append((len(prefix), f"{rates[-1]:.4%}", f"{1 - rates[-1]:.2e}"))
    emit(name, table(["entries", "pruned", "unpruned frac"], rows))
    return rates


def test_fig11a_distinct_improves(benchmark):
    stream = random_order_stream(200_000, 500, seed=11)
    rates = _sweep(
        "fig11a_distinct", stream, lambda: DistinctPruner(rows=4096, cols=2)
    )
    assert rates == sorted(rates)
    benchmark(lambda: DistinctPruner(rows=512, cols=2).survivors(stream[:20_000]))


def test_fig11b_skyline_improves(benchmark):
    points = uniform_points(100_000, dims=2, seed=12)
    rates = _sweep(
        "fig11b_skyline", points, lambda: SkylinePruner(dims=2, points=7, score="aph")
    )
    assert rates == sorted(rates)
    benchmark(
        lambda: [SkylinePruner(dims=2, points=7).process(p) for p in points[:5000]]
    )


def test_fig11c_topn_improves(benchmark):
    stream = revenue_stream(200_000, seed=13)
    rates = _sweep(
        "fig11c_topn",
        stream,
        lambda: TopNRandomizedPruner(n=250, rows=600, delta=1e-4, seed=13),
    )
    assert rates == sorted(rates)
    benchmark(
        lambda: TopNRandomizedPruner(n=250, rows=600, seed=1).survivors(
            stream[:20_000]
        )
    )


def test_fig11d_groupby_improves(benchmark):
    stream = keyed_values(200_000, 200, seed=14)
    rates = _sweep(
        "fig11d_groupby", stream, lambda: GroupByPruner(rows=4096, cols=8)
    )
    assert rates == sorted(rates)
    benchmark(lambda: GroupByPruner(rows=512, cols=4).survivors(stream[:20_000]))


def test_fig11e_join_degrades(benchmark):
    left, right = overlapping_key_sets(150_000, 150_000, overlap=0.1, seed=15)
    rows = []
    rates = []
    for fraction in FRACTIONS:
        size = int(len(left) * fraction)
        l, r = left[:size], right[:size]
        pruner = JoinPruner("L", "R", memory_bits=1 << 17, seed=15)
        pruner.build(l, r)
        survived = sum(
            1
            for side, keys in (("L", l), ("R", r))
            for k in keys
            if pruner.process((side, k)) is PruneDecision.FORWARD
        )
        rates.append(1 - survived / (2 * size))
        rows.append((2 * size, f"{rates[-1]:.4%}", f"{1 - rates[-1]:.2e}"))
    emit("fig11e_join", table(["entries", "pruned", "unpruned frac"], rows))
    # More data -> more false positives -> lower pruning.
    assert rates == sorted(rates, reverse=True)
    benchmark(
        lambda: JoinPruner("L", "R", memory_bits=1 << 16).build(
            left[:5000], right[:5000]
        )
    )


def test_fig11f_having_degrades_after_onset(benchmark):
    # SUM(adRevenue) > threshold per language: the paper's query has an
    # *empty* output when the data is too small, so the smallest prefix
    # prunes perfectly; as data grows, keys cross the threshold and the
    # candidate set (true keys + Count-Min false positives) appears —
    # pruning degrades from perfect, yet stays near-perfect with 512
    # counters per row.
    stream = [(k, float(int(v))) for k, v in keyed_values(200_000, 25, seed=16, skew=1.0)]
    threshold = 3_000_000.0
    rows = []
    rates = []
    candidates = []
    for prefix in prefixes(stream, FRACTIONS):
        pruner = HavingPruner(threshold=threshold, width=512, depth=3)
        survivors = pruner.survivors(prefix)
        rates.append(pruner.stats.pruning_rate)
        candidates.append(len({key for key, _ in survivors}))
        rows.append(
            (
                len(prefix),
                candidates[-1],
                f"{rates[-1]:.4%}",
                f"{1 - rates[-1]:.2e}",
            )
        )
    emit(
        "fig11f_having",
        table(["entries", "candidate keys", "pruned", "unpruned frac"], rows),
    )
    # Empty output -> perfect pruning on the smallest prefix.
    assert rates[0] == 1.0 and candidates[0] == 0
    # Candidates appear with scale and the rate dips below perfect...
    assert candidates[-1] > 0
    assert rates[-1] < 1.0
    assert candidates == sorted(candidates)
    # ...but 512 counters/row keep pruning near-perfect throughout.
    assert min(rates) > 0.995
    benchmark(
        lambda: HavingPruner(threshold=threshold, width=512).survivors(stream[:10_000])
    )
