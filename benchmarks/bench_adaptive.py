"""Adaptive runtime A/B: closed-loop remediation vs a static configuration.

Three arms over the same seeded drifting DISTINCT workload
(:mod:`repro.adapt.scenario` — the working set grows past the cache
matrix mid-session, collapsing the pruning ratio):

* **static** — the base configuration rides the collapse to the end.
* **adaptive** — the remediation engine detects the collapse, resizes
  the sketch under canary guard, and commits each improvement; pruning
  recovers while the workload is still drifted.
* **forced-regression** — an injected planner proposes a *harmful*
  shrink.  The canary window measures no improvement and the engine
  rolls the override back: the guardrail demonstration.

Every arm runs with per-run reference verification, so the numbers are
earned at equal correctness.  The report records measured wall-clock
and pruning ratio per phase; the assertions require the adaptive arm
to beat static on post-drift pruning and the regression arm to roll
back every action it applied.
"""

from __future__ import annotations

from dataclasses import replace

from repro.adapt.scenario import drift_tables, run_scenario
from repro.engine.cluster import ClusterConfig

from _harness import emit, env_int, table

#: Post-drift working set (entries); the cache matrix holds 1024.
DRIFT_WS = env_int("CHEETAH_BENCH_ADAPT_WS", 4096)
POST_RUNS = env_int("CHEETAH_BENCH_ADAPT_RUNS", 24)
PRE_RUNS = 10
REPEATS = 4
TAIL = 3  # steady-state window: the last runs of each phase


def _runs():
    return drift_tables(
        pre_runs=PRE_RUNS,
        post_runs=POST_RUNS,
        pre_working_set=256,
        post_working_set=DRIFT_WS,
        repeats=REPEATS,
        seed=0,
    )


def _config() -> ClusterConfig:
    return ClusterConfig(distinct_rows=512, distinct_cols=2)


def _shrink_planner(detector, op_kind, config):
    """The forced-regression planner: halve the sketch (harmful)."""
    from repro.adapt.actions import RemediationAction

    if op_kind != "distinct":
        return None
    return RemediationAction(
        action="sketch-resize",
        config=replace(config, distinct_rows=max(8, config.distinct_rows // 2)),
        detail=(
            f"distinct_rows {config.distinct_rows} -> "
            f"{max(8, config.distinct_rows // 2)} (forced regression)"
        ),
        metric="pruning_ratio",
    )


def _arm_row(tag, arm):
    return {
        "arm": tag,
        "pre_pruning": arm.phase_pruning("pre-drift"),
        "post_pruning": arm.phase_pruning("post-drift"),
        "post_tail_pruning": arm.phase_pruning("post-drift", tail=TAIL),
        "pre_seconds": arm.phase_seconds("pre-drift"),
        "post_seconds": arm.phase_seconds("post-drift"),
        "post_tail_seconds": arm.phase_seconds("post-drift", tail=TAIL),
        "outcomes": arm.outcomes(),
        "exact": arm.all_exact,
    }


def test_adaptive_beats_static_and_rolls_back_regressions():
    static = run_scenario(_runs(), _config(), adaptive=False, verify=True)
    adaptive = run_scenario(_runs(), _config(), adaptive=True, verify=True)
    regression = run_scenario(
        _runs(), _config(), adaptive=True, verify=True,
        planner=_shrink_planner,
    )

    arms = [
        ("static", static), ("adaptive", adaptive),
        ("forced-regression", regression),
    ]
    for _, arm in arms:
        assert arm.all_exact, "an arm diverged from the reference executor"

    # The headline: once remediation settles, adaptive pruning must beat
    # the static arm's collapsed steady state by a real margin.
    static_tail = static.phase_pruning("post-drift", tail=TAIL)
    adaptive_tail = adaptive.phase_pruning("post-drift", tail=TAIL)
    assert adaptive_tail > static_tail + 0.10, (
        f"adaptive tail pruning {adaptive_tail:.2%} did not clear "
        f"static {static_tail:.2%}"
    )
    outcomes = adaptive.outcomes()
    assert outcomes.get("committed", 0) >= 1, outcomes

    # The guardrail: every harmful action the regression arm applied was
    # measured, found wanting, and rolled back — leaving no override.
    reg_outcomes = regression.outcomes()
    assert reg_outcomes.get("applied", 0) >= 1, reg_outcomes
    assert reg_outcomes.get("rolled-back", 0) >= 1, reg_outcomes
    assert reg_outcomes.get("committed", 0) == 0, reg_outcomes

    rows = [
        [
            row["arm"],
            f"{row['pre_pruning']:.2%}",
            f"{row['post_pruning']:.2%}",
            f"{row['post_tail_pruning']:.2%}",
            f"{row['post_seconds']:.3f}s",
            f"{row['post_tail_seconds']:.3f}s",
            " ".join(
                f"{k}={v}" for k, v in sorted(row["outcomes"].items())
            ) or "-",
        ]
        for row in (_arm_row(tag, arm) for tag, arm in arms)
    ]
    lines = table(
        ["arm", "pre prune", "post prune", f"post prune (last {TAIL})",
         "post wall", f"post wall (last {TAIL})", "actions"],
        rows,
    )
    lines.append("")
    lines.append(
        f"drift: working set 256 -> {DRIFT_WS:,} over a "
        f"{512 * 2:,}-entry cache matrix; {PRE_RUNS}+{POST_RUNS} runs, "
        f"{REPEATS} repeats/run; every run of every arm asserted equal "
        f"to the reference executor"
    )
    lines.append(
        "adaptive: guarded sketch resizes under canary windows; "
        "forced-regression: an injected planner shrinks the sketch and "
        "the canary rolls every application back"
    )
    emit(
        "adaptive_runtime",
        lines,
        {
            "drift_working_set": DRIFT_WS,
            "pre_runs": PRE_RUNS,
            "post_runs": POST_RUNS,
            "repeats": REPEATS,
            "tail": TAIL,
            "arms": {tag: _arm_row(tag, arm) for tag, arm in arms},
        },
    )


if __name__ == "__main__":
    test_adaptive_beats_static_and_rolls_back_regressions()
