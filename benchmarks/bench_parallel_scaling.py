"""Multi-core scaling of the sharded dataplane (engineering figure).

Runs the two headline workloads — a 1M-entry FILTER and a 1M-entry
TOP N — through the cluster at ``parallelism`` 1, 2 and 4 and reports
wall-time, throughput, and speedup relative to the sequential batched
path.  Outputs are asserted identical across parallelism levels before
any number is recorded, so the table only ever shows correct runs.

Honesty notes baked into the artifact: the host's ``os.cpu_count()`` is
recorded alongside the figures (speedup beyond the physical core count
is not expected), and the row count is ``CHEETAH_BENCH_N`` (default
1,000,000) so CI can run the same test as a small smoke.
"""

from __future__ import annotations

import os

import numpy as np

from repro.engine.cluster import Cluster, ClusterConfig
from repro.engine.expressions import col
from repro.engine.plan import FilterOp, Query, TopNOp
from repro.engine.table import Table

from _harness import best_of, emit, env_int, table

BENCH_N = env_int("CHEETAH_BENCH_N", 1_000_000)
BATCH_SIZE = env_int("CHEETAH_BENCH_BATCH", 65536)
PARALLELISMS = (1, 2, 4)
REPS = env_int("CHEETAH_BENCH_REPS", 2)


def _tables() -> dict:
    rng = np.random.default_rng(7)
    return {
        "UserVisits": Table(
            "UserVisits",
            {"duration": rng.integers(0, 10_000, BENCH_N)},
        )
    }


def _workloads():
    # FILTER at ~1% selectivity; deterministic TOP N over the same column.
    return [
        ("filter", Query(FilterOp("UserVisits", col("duration") > 9900))),
        ("topn", Query(TopNOp("UserVisits", "duration", 250))),
    ]


def _timed_run(query, tables, parallelism):
    config = ClusterConfig(
        batch_size=BATCH_SIZE, parallelism=parallelism, topn_randomized=False
    )
    cluster = Cluster(workers=8, config=config)
    seconds, result = best_of(lambda: cluster.run(query, tables), REPS)
    return seconds, result.output


def test_parallel_scaling_report():
    """Time each workload at every parallelism level; emit the table."""
    tables = _tables()
    rows = []
    figures = {
        "entries": BENCH_N,
        "cpu_count": os.cpu_count(),
        "workloads": {},
    }
    for name, query in _workloads():
        baseline_s, baseline_out = _timed_run(query, tables, 1)
        per_level = {}
        for parallelism in PARALLELISMS:
            if parallelism == 1:
                seconds, output = baseline_s, baseline_out
            else:
                seconds, output = _timed_run(query, tables, parallelism)
                assert output == baseline_out, (
                    f"{name}: parallelism={parallelism} output diverges"
                )
            speedup = baseline_s / seconds
            per_level[str(parallelism)] = {
                "seconds": seconds,
                "entries_per_s": BENCH_N / seconds,
                "speedup": speedup,
            }
            rows.append(
                [
                    name,
                    f"{BENCH_N:,}",
                    parallelism,
                    f"{seconds:.3f}",
                    f"{BENCH_N / seconds:,.0f}",
                    f"{speedup:.2f}x",
                ]
            )
        figures["workloads"][name] = per_level
    lines = table(
        ["workload", "entries", "parallelism", "seconds", "entries/s", "speedup"],
        rows,
    )
    lines.append("")
    lines.append(
        f"host cpu_count={os.cpu_count()}  batch={BATCH_SIZE}  "
        f"best-of-{REPS} wall times; speedup is vs parallelism=1 on this host"
    )
    emit("parallel_scaling", lines, figures)


if __name__ == "__main__":
    test_parallel_scaling_report()
