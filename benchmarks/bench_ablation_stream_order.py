"""Stream-order sensitivity ablations (the paper's footnotes 8/9).

The paper permutes nearly sorted columns before filtering/SKYLINE
queries and concedes TOP N's adversarial case ("if the input stream is
monotonically increasing, the switch must pass all entries").  This
bench quantifies both: pruning rates for random, nearly-sorted-ascending,
nearly-sorted-descending, and strictly ascending orders, for TOP N and
SKYLINE — correctness holds in every order, only the rate moves.

A second test sweeps SKYLINE dimensionality: more dimensions mean larger
skylines and weaker domination, so pruning and the Table 2 footprint both
degrade — the reason the paper evaluates D = 2.
"""

from __future__ import annotations

import numpy as np

from repro.core.skyline import SkylinePruner, master_skyline
from repro.core.topn import TopNRandomizedPruner, master_topn
from repro.switch.compiler import footprint_skyline
from repro.workloads.synthetic import uniform_points

from _harness import emit, table


def _orders(values):
    rng = np.random.default_rng(7)
    ascending = np.sort(values)
    nearly_asc = ascending + rng.integers(-3, 4, size=len(values))
    return {
        "random": list(values),
        "nearly sorted asc": nearly_asc.tolist(),
        "descending": ascending[::-1].tolist(),
        "strictly ascending": ascending.tolist(),
    }


def test_ablation_topn_stream_order(benchmark):
    rng = np.random.default_rng(3)
    values = rng.integers(1, 1_000_000, size=30_000)
    rows = []
    rates = {}
    for name, stream in _orders(values).items():
        stream = [float(v) for v in stream]
        pruner = TopNRandomizedPruner(n=100, rows=256, delta=1e-3, seed=1)
        survivors = pruner.survivors(stream)
        rates[name] = pruner.stats.pruning_rate
        exact = sorted(master_topn(survivors, 100)) == sorted(
            master_topn(stream, 100)
        )
        rows.append((name, f"{rates[name]:.2%}", "exact" if exact else "WRONG"))
        assert exact, name
    emit("ablation_topn_order", table(["stream order", "pruned", "output"], rows))

    # The paper's worst case: ascending defeats pruning entirely...
    assert rates["strictly ascending"] == 0.0
    # ...while descending is the best case and random sits between.
    assert rates["descending"] > rates["random"] > rates["strictly ascending"]
    benchmark(
        lambda: TopNRandomizedPruner(n=100, rows=256, seed=2).survivors(
            [float(v) for v in values[:5000]]
        )
    )


def test_ablation_skyline_stream_order(benchmark):
    rng = np.random.default_rng(5)
    base = uniform_points(20_000, dims=2, seed=5)
    orders = {
        "random": base,
        # Sorted by the sum score ascending: every arrival looks good,
        # mirroring the nearly sorted pageRank the paper permutes away.
        "ascending by score": sorted(base, key=lambda p: p[0] + p[1]),
        "descending by score": sorted(base, key=lambda p: -(p[0] + p[1])),
    }
    rows = []
    rates = {}
    for name, points in orders.items():
        pruner = SkylinePruner(dims=2, points=8, score="sum")
        received = []
        for point in points:
            if pruner.process(point).value == "forward":
                received.append(pruner.last_carried)
        received.extend(pruner.drain())
        rates[name] = pruner.stats.pruning_rate
        exact = set(master_skyline(received)) == set(master_skyline(points))
        rows.append((name, f"{rates[name]:.2%}", "exact" if exact else "WRONG"))
        assert exact, name
    emit("ablation_skyline_order", table(["stream order", "pruned", "output"], rows))
    assert rates["descending by score"] >= rates["random"] >= rates["ascending by score"]
    benchmark(lambda: [SkylinePruner(dims=2, points=8).process(p) for p in base[:3000]])


def test_ablation_skyline_dimensionality(benchmark):
    rows = []
    rates = {}
    for dims in (2, 3, 4):
        points = uniform_points(15_000, dims=dims, seed=11)
        pruner = SkylinePruner(dims=dims, points=10, score="sum")
        for point in points:
            pruner.process(point)
        rates[dims] = pruner.stats.pruning_rate
        fp = footprint_skyline(dims=dims, points=10, score="sum")
        skyline_size = len(master_skyline(points))
        rows.append(
            (
                dims,
                skyline_size,
                f"{rates[dims]:.2%}",
                fp.stages,
                fp.alus,
            )
        )
    emit(
        "ablation_skyline_dims",
        table(["dims", "true skyline", "pruned", "stages", "ALUs"], rows),
    )
    # Higher dimensionality: larger skylines, weaker pruning, more ALUs.
    assert rates[2] > rates[3] > rates[4]
    benchmark(lambda: footprint_skyline(dims=4, points=10))
