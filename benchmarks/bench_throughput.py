"""Pruner throughput microbenchmarks (engineering table, not a paper figure).

One pytest-benchmark per operator at its Table 2 default configuration,
processing a fixed synthetic stream.  The register-level DISTINCT runs
too, to quantify the fidelity tax of the pipeline simulator relative to
the algorithmic model.

``test_batch_vs_scalar_report`` additionally races every batch-capable
pruner's ``process_batch`` path against its scalar ``process`` loop on
the same stream, asserts the decisions are identical, and writes the
entries/sec comparison to ``benchmarks/results/throughput_batch.txt``.
The stream length is ``CHEETAH_BENCH_N`` (default 1,000,000) so CI can
run the same test as a quick smoke on a small stream.
"""

from __future__ import annotations

import random
import time

import numpy as np
import pytest

from repro.core.base import PruneDecision
from repro.obs import null_registry
from repro.core.distinct import DistinctPruner
from repro.core.filtering import FilterPruner
from repro.core.groupby import GroupByPruner
from repro.core.having import HavingPruner
from repro.core.join import JoinPruner
from repro.core.skyline import SkylinePruner
from repro.core.topn import TopNDeterministicPruner, TopNRandomizedPruner
from repro.engine.expressions import col
from repro.switch.pipeline import Pipeline
from repro.switch.programs import PipelineDistinct
from repro.switch.resources import ResourceModel
from repro.workloads.synthetic import (
    keyed_values,
    overlapping_key_sets,
    random_order_stream,
    uniform_points,
)

from _harness import bench_streams, chunks, emit, env_int, table

STREAM = random_order_stream(5000, 400, seed=1)
KEYED = keyed_values(5000, 200, seed=2)
POINTS = uniform_points(5000, dims=2, seed=3)
VALUES = [random.Random(4).uniform(0, 1e6) for _ in range(5000)]

# Scalar-vs-batch comparison knobs.  CHEETAH_BENCH_N is the stream
# length (CI sets a small value for the smoke run); CHEETAH_BENCH_BATCH
# is the process_batch chunk size.
BATCH_N = env_int("CHEETAH_BENCH_N", 1_000_000)
BATCH_SIZE = env_int("CHEETAH_BENCH_BATCH", 65536)


def test_throughput_distinct(benchmark):
    benchmark(lambda: DistinctPruner(rows=4096, cols=2).survivors(STREAM))


def test_throughput_distinct_register_level(benchmark):
    model = ResourceModel(
        stages=4, alus_per_stage=4, sram_bits_per_stage=4096 * 2 * 64 + 1024,
        tcam_entries=16, phv_bits=512,
    )

    def run():
        program = PipelineDistinct(Pipeline(model), rows=4096, cols=2)
        program.survivors(STREAM)

    benchmark(run)


def test_throughput_topn_deterministic(benchmark):
    benchmark(lambda: TopNDeterministicPruner(n=250, thresholds=4).survivors(VALUES))


def test_throughput_topn_randomized(benchmark):
    benchmark(
        lambda: TopNRandomizedPruner(n=250, rows=600, delta=1e-4, seed=1).survivors(
            VALUES
        )
    )


def test_throughput_groupby(benchmark):
    benchmark(lambda: GroupByPruner(rows=4096, cols=8).survivors(KEYED))


def test_throughput_having(benchmark):
    stream = [(k, float(int(v))) for k, v in KEYED]
    benchmark(lambda: HavingPruner(threshold=1000, width=1024, depth=3).survivors(stream))


def test_throughput_skyline(benchmark):
    def run():
        pruner = SkylinePruner(dims=2, points=10, score="sum")
        for point in POINTS:
            pruner.process(point)

    benchmark(run)


def test_throughput_join_probe(benchmark):
    keys = list(range(5000))
    pruner = JoinPruner("L", "R", memory_bits=4 * 1024 * 1024 * 8)
    pruner.build(keys, keys[2500:] + list(range(10_000, 12_500)))

    def run():
        for key in keys:
            pruner.process(("L", key))

    benchmark(run)


# ---------------------------------------------------------------------------
# Scalar vs batch dataplane comparison
# ---------------------------------------------------------------------------


def _chunks(array, size=None):
    """Batch-size chunking via the shared harness helper."""
    return chunks(array, size or BATCH_SIZE)


def _scalar_decisions(pruner, entries):
    """Run the scalar process() loop; return the FORWARD mask."""
    return np.fromiter(
        (pruner.process(entry) is PruneDecision.FORWARD for entry in entries),
        dtype=bool,
        count=len(entries),
    )


def _batch_decisions(pruner, batches):
    """Run process_batch over pre-chunked batches; concatenate the masks."""
    return np.concatenate([pruner.process_batch(batch) for batch in batches])


def _batch_specs():
    """One (name, count, scalar_run, batch_run) spec per batch-capable pruner.

    The run callables construct a fresh pruner (so scalar and batch start
    from identical state) and return the per-entry FORWARD mask; input
    representations are materialized here, outside the timed region.
    """
    n = BATCH_N
    streams = bench_streams(n)
    keys = streams["keys"]
    values = streams["values"]
    group_keys = streams["group_keys"]

    price = values
    qty = streams["qty"]
    filter_formula = ((col("price") > 120.0) & (col("qty") <= 24)).to_formula(
        ["price", "qty"]
    )
    filter_rows = list(zip(price.tolist(), qty.tolist()))

    left, right = overlapping_key_sets(n, max(1, n // 4), overlap=0.5, seed=15)
    left = np.asarray(left, dtype=np.int64)

    def make_join():
        pruner = JoinPruner("L", "R", memory_bits=4 * 1024 * 1024 * 8)
        pruner.build(left, right)
        return pruner

    keyed_rows = list(zip(group_keys.tolist(), values.tolist()))
    keyed_cols = (group_keys, values)

    sky_n = min(n, 250_000)
    sky_points = np.asarray(uniform_points(sky_n, dims=4, seed=16), dtype=np.float64)
    sky_rows = [tuple(row) for row in sky_points.tolist()]

    values_list = values.tolist()
    keys_list = keys.tolist()

    return [
        (
            "filter",
            n,
            lambda: _scalar_decisions(FilterPruner(filter_formula), filter_rows),
            lambda: _batch_decisions(
                FilterPruner(filter_formula), _chunks((price, qty))
            ),
        ),
        (
            "distinct",
            n,
            lambda: _scalar_decisions(DistinctPruner(rows=4096, cols=2), keys_list),
            lambda: _batch_decisions(DistinctPruner(rows=4096, cols=2), _chunks(keys)),
        ),
        (
            "topn-det",
            n,
            lambda: _scalar_decisions(
                TopNDeterministicPruner(n=1000, thresholds=4), values_list
            ),
            lambda: _batch_decisions(
                TopNDeterministicPruner(n=1000, thresholds=4), _chunks(values)
            ),
        ),
        (
            "topn-rand",
            n,
            lambda: _scalar_decisions(
                TopNRandomizedPruner(n=1000, rows=2400, delta=1e-4, seed=1),
                values_list,
            ),
            lambda: _batch_decisions(
                TopNRandomizedPruner(n=1000, rows=2400, delta=1e-4, seed=1),
                _chunks(values),
            ),
        ),
        (
            "groupby",
            n,
            lambda: _scalar_decisions(GroupByPruner(rows=4096, cols=8), keyed_rows),
            lambda: _batch_decisions(GroupByPruner(rows=4096, cols=8), _chunks(keyed_cols)),
        ),
        (
            "having-sum",
            n,
            lambda: _scalar_decisions(
                HavingPruner(threshold=500.0, width=1024, depth=3), keyed_rows
            ),
            lambda: _batch_decisions(
                HavingPruner(threshold=500.0, width=1024, depth=3), _chunks(keyed_cols)
            ),
        ),
        (
            "join-probe",
            n,
            lambda: _scalar_decisions(
                make_join(), [("L", key) for key in left.tolist()]
            ),
            lambda: _batch_decisions(
                make_join(), [("L", chunk) for chunk in _chunks(left)]
            ),
        ),
        (
            "skyline",
            sky_n,
            lambda: _scalar_decisions(
                SkylinePruner(dims=4, points=10, score="sum"), sky_rows
            ),
            lambda: _batch_decisions(
                SkylinePruner(dims=4, points=10, score="sum"), _chunks(sky_points)
            ),
        ),
    ]


def test_batch_vs_scalar_report():
    """Race process_batch against the scalar loop; emit the comparison table.

    Decisions must be bit-identical — the batch dataplane is an exact
    reimplementation, not an approximation — so this doubles as an
    end-to-end equivalence check at benchmark scale.
    """
    rows = []
    figures = {}
    for name, count, scalar_run, batch_run in _batch_specs():
        start = time.perf_counter()
        scalar_mask = scalar_run()
        scalar_s = time.perf_counter() - start
        start = time.perf_counter()
        batch_mask = batch_run()
        batch_s = time.perf_counter() - start
        assert np.array_equal(scalar_mask, batch_mask), (
            f"{name}: batch decisions diverge from scalar"
        )
        figures[name] = {
            "entries": count,
            "scalar_entries_per_s": count / scalar_s,
            "batch_entries_per_s": count / batch_s,
            "speedup": scalar_s / batch_s,
        }
        rows.append(
            [
                name,
                f"{count:,}",
                f"{count / scalar_s:,.0f}",
                f"{count / batch_s:,.0f}",
                f"{scalar_s / batch_s:.1f}x",
            ]
        )
    emit(
        "throughput_batch",
        [
            f"Scalar vs batch pruner throughput "
            f"(stream={BATCH_N:,}, batch_size={BATCH_SIZE:,})",
            "",
        ]
        + table(
            ["pruner", "entries", "scalar entries/s", "batch entries/s", "speedup"],
            rows,
        ),
        metrics=figures,
    )


# ---------------------------------------------------------------------------
# Instrumentation overhead
# ---------------------------------------------------------------------------


def _one_filter_pass(instrumented, batched, inputs):
    """Wall time of one FilterPruner pass over the prepared inputs.

    ``instrumented=False`` swaps in the shared null registry via
    ``with_metrics`` — the record calls still execute, but every sample
    is a no-op, isolating the cost of the live counters themselves.
    """
    formula, filter_rows, chunked = inputs
    pruner = FilterPruner(formula)
    if not instrumented:
        pruner.with_metrics(null_registry())
    start = time.perf_counter()
    if batched:
        _batch_decisions(pruner, chunked)
    else:
        _scalar_decisions(pruner, filter_rows)
    return time.perf_counter() - start


def _race_filter(batched, inputs, repeats=5):
    """Best-of-``repeats`` (instrumented_s, null_s), interleaved.

    Alternating the two configurations inside one loop (after a warmup
    pass each) keeps slow machine-level drift — thermal throttling, a
    noisy neighbour — from landing entirely on one side of the race.
    """
    _one_filter_pass(True, batched, inputs)
    _one_filter_pass(False, batched, inputs)
    best_on = best_off = float("inf")
    for _ in range(repeats):
        best_on = min(best_on, _one_filter_pass(True, batched, inputs))
        best_off = min(best_off, _one_filter_pass(False, batched, inputs))
    return best_on, best_off


def test_metrics_overhead_report():
    """Measure the cost of live metrics on the 1M-entry filter benchmark.

    Races the default (instrumented) FilterPruner against the same pruner
    rebound to ``null_registry()``, on both the scalar and batch paths.
    The acceptance bar is < 10% overhead on the batch path, which records
    one counter update per chunk rather than per entry.
    """
    n = BATCH_N
    streams = bench_streams(n)
    price, qty = streams["values"], streams["qty"]
    formula = ((col("price") > 120.0) & (col("qty") <= 24)).to_formula(
        ["price", "qty"]
    )
    inputs = (formula, list(zip(price.tolist(), qty.tolist())), _chunks((price, qty)))

    rows = []
    figures = {"entries": n, "batch_size": BATCH_SIZE}
    for path, batched in (("scalar", False), ("batch", True)):
        on_s, off_s = _race_filter(batched, inputs)
        overhead = (on_s - off_s) / off_s
        figures[path] = {
            "instrumented_s": on_s,
            "null_registry_s": off_s,
            "overhead": overhead,
        }
        rows.append(
            [
                path,
                f"{n:,}",
                f"{on_s * 1000:,.1f}",
                f"{off_s * 1000:,.1f}",
                f"{overhead:+.1%}",
            ]
        )
    emit(
        "metrics_overhead",
        [
            f"Metrics instrumentation overhead on the filter pruner "
            f"(stream={n:,}, batch_size={BATCH_SIZE:,})",
            "",
        ]
        + table(
            ["path", "entries", "metrics ms", "null-registry ms", "overhead"],
            rows,
        ),
        metrics=figures,
    )
    # Sub-millisecond batch runs (tiny CI smoke streams) are noise-bound;
    # the 10% budget is only meaningful at benchmark scale.
    if n >= 200_000:
        assert figures["batch"]["overhead"] < 0.10, (
            f"batch-path metrics overhead {figures['batch']['overhead']:.1%} "
            f"exceeds the 10% budget"
        )


def _one_traced_run(traced, query, tables, sample):
    """Wall time of one end-to-end Cluster.run, traced or not.

    The traced side activates a fresh root context (every engine phase
    span gets stamped and re-parented) and samples fused kernel batches
    at rate ``sample``; the untraced side runs the identical cluster
    with tracing off — the difference is the full hierarchical-tracing
    tax on the hot path.
    """
    from repro.engine.cluster import Cluster, ClusterConfig
    from repro.obs import TraceContext, trace_context

    cluster = Cluster(
        workers=5,
        config=ClusterConfig(
            batch_size=BATCH_SIZE,
            fused_trace_sample=sample if traced else 0,
        ),
    )
    start = time.perf_counter()
    if traced:
        with trace_context(TraceContext.root()):
            cluster.run(query, tables)
    else:
        cluster.run(query, tables)
    return time.perf_counter() - start


def test_tracing_overhead_report():
    """Measure the cost of hierarchical tracing on an end-to-end run.

    Races a traced ``Cluster.run`` (active root context, fused batches
    sampled every 64th) against the identical untraced run, interleaved
    best-of-5 after a warmup each.  The acceptance bar mirrors the
    metrics budget: < 10% overhead at benchmark scale.
    """
    from repro.engine.expressions import col as ecol
    from repro.engine.plan import CountOp, Query
    from repro.engine.table import Table

    n = BATCH_N
    streams = bench_streams(n)
    tables = {
        "products": Table(
            "products", {"price": streams["values"], "qty": streams["qty"]}
        )
    }
    query = Query(CountOp("products", (ecol("price") > 120.0) & (ecol("qty") <= 24)))
    sample = 64

    _one_traced_run(True, query, tables, sample)
    _one_traced_run(False, query, tables, sample)
    best_on = best_off = float("inf")
    for _ in range(5):
        best_on = min(best_on, _one_traced_run(True, query, tables, sample))
        best_off = min(best_off, _one_traced_run(False, query, tables, sample))
    overhead = (best_on - best_off) / best_off
    figures = {
        "entries": n,
        "batch_size": BATCH_SIZE,
        "fused_trace_sample": sample,
        "traced_s": best_on,
        "untraced_s": best_off,
        "overhead": overhead,
    }
    emit(
        "tracing_overhead",
        [
            f"Hierarchical tracing overhead on an end-to-end run "
            f"(stream={n:,}, batch_size={BATCH_SIZE:,}, "
            f"fused sample=1/{sample})",
            "",
        ]
        + table(
            ["entries", "traced ms", "untraced ms", "overhead"],
            [
                [
                    f"{n:,}",
                    f"{best_on * 1000:,.1f}",
                    f"{best_off * 1000:,.1f}",
                    f"{overhead:+.1%}",
                ]
            ],
        ),
        metrics=figures,
    )
    # Same noise guard as the metrics budget: only meaningful at scale.
    if n >= 200_000:
        assert overhead < 0.10, (
            f"tracing overhead {overhead:.1%} exceeds the 10% budget"
        )
