"""Pruner throughput microbenchmarks (engineering table, not a paper figure).

One pytest-benchmark per operator at its Table 2 default configuration,
processing a fixed synthetic stream.  The register-level DISTINCT runs
too, to quantify the fidelity tax of the pipeline simulator relative to
the algorithmic model.
"""

from __future__ import annotations

import random

import pytest

from repro.core.distinct import DistinctPruner
from repro.core.groupby import GroupByPruner
from repro.core.having import HavingPruner
from repro.core.join import JoinPruner
from repro.core.skyline import SkylinePruner
from repro.core.topn import TopNDeterministicPruner, TopNRandomizedPruner
from repro.switch.pipeline import Pipeline
from repro.switch.programs import PipelineDistinct
from repro.switch.resources import ResourceModel
from repro.workloads.synthetic import (
    keyed_values,
    random_order_stream,
    uniform_points,
)

STREAM = random_order_stream(5000, 400, seed=1)
KEYED = keyed_values(5000, 200, seed=2)
POINTS = uniform_points(5000, dims=2, seed=3)
VALUES = [random.Random(4).uniform(0, 1e6) for _ in range(5000)]


def test_throughput_distinct(benchmark):
    benchmark(lambda: DistinctPruner(rows=4096, cols=2).survivors(STREAM))


def test_throughput_distinct_register_level(benchmark):
    model = ResourceModel(
        stages=4, alus_per_stage=4, sram_bits_per_stage=4096 * 2 * 64 + 1024,
        tcam_entries=16, phv_bits=512,
    )

    def run():
        program = PipelineDistinct(Pipeline(model), rows=4096, cols=2)
        program.survivors(STREAM)

    benchmark(run)


def test_throughput_topn_deterministic(benchmark):
    benchmark(lambda: TopNDeterministicPruner(n=250, thresholds=4).survivors(VALUES))


def test_throughput_topn_randomized(benchmark):
    benchmark(
        lambda: TopNRandomizedPruner(n=250, rows=600, delta=1e-4, seed=1).survivors(
            VALUES
        )
    )


def test_throughput_groupby(benchmark):
    benchmark(lambda: GroupByPruner(rows=4096, cols=8).survivors(KEYED))


def test_throughput_having(benchmark):
    stream = [(k, float(int(v))) for k, v in KEYED]
    benchmark(lambda: HavingPruner(threshold=1000, width=1024, depth=3).survivors(stream))


def test_throughput_skyline(benchmark):
    def run():
        pruner = SkylinePruner(dims=2, points=10, score="sum")
        for point in POINTS:
            pruner.process(point)

    benchmark(run)


def test_throughput_join_probe(benchmark):
    keys = list(range(5000))
    pruner = JoinPruner("L", "R", memory_bits=4 * 1024 * 1024 * 8)
    pruner.build(keys, keys[2500:] + list(range(10_000, 12_500)))

    def run():
        for key in keys:
            pruner.process(("L", key))

    benchmark(run)
