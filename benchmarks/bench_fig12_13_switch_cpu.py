"""Figures 12/13: server vs switch-CPU processing (the NetAccel overflow path).

NetAccel sends entries the dataplane cannot handle to the switch CPU;
Cheetah sends them to the master server.  The weak embedded CPU behind a
thin dataplane-to-CPU channel loses at every scale, and the gap widens as
the overflow share grows — the paper's argument for pruning-to-the-server
over overflow-to-the-CPU, shown for GROUP BY (Fig. 12) and DISTINCT
(Fig. 13).
"""

from __future__ import annotations

from repro.baselines.netaccel import NetAccelModel

from _harness import emit, table

SIZES = (10_000, 100_000, 1_000_000, 10_000_000)


def test_fig12_13_switch_cpu(benchmark):
    model = NetAccelModel()
    rows = []
    for entries in SIZES:
        server = model.server_time(entries)
        cpu = model.switch_cpu_time(entries)
        rows.append(
            (
                f"{entries:,}",
                f"{server * 1e3:.2f} ms",
                f"{cpu * 1e3:.2f} ms",
                f"{cpu / server:.1f}x",
            )
        )
    lines = table(["overflow entries", "master server", "switch CPU", "slowdown"], rows)
    emit("fig12_13_switch_cpu", lines)

    # The switch CPU is slower at every size, by a widening absolute gap.
    gaps = [model.switch_cpu_time(n) - model.server_time(n) for n in SIZES]
    assert all(gap > 0 for gap in gaps)
    assert gaps == sorted(gaps)
    # And the server sustains millions of entries per second.
    assert model.server_time(1_000_000) < 1.0
    benchmark(lambda: model.switch_cpu_time(1_000_000))
