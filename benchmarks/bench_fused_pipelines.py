"""Fused vs per-pruner execution of packed multi-query streams.

Races ``Cluster.run_packed`` with the fused single-pass dataplane
(:mod:`repro.switch.fuse`, the default) against the per-pruner batched
path (``ClusterConfig(fused=False)`` with the same batch size) on two
packed workloads:

* **packable** — two filters, a COUNT and a deterministic TOP N over
  the shared columns: every query compiles to a fused kernel, so the
  inner loop is pure vectorized work with zero intermediate entry
  tuples.  This is the headline row; the acceptance bar is >= 3x.
* **mixed** — adds exact DISTINCT and GROUP BY/max: their cache
  matrices still replay row groups sequentially (the exact-state
  contract), so the win is smaller and reported honestly.

Every timed configuration's outputs are asserted identical to each
other *and* to the reference executor before any number is recorded.
``benchmarks/references/fused_pipelines.reference.json`` pins the
expected speedups; ``scripts/check_perf_regression.py`` compares a
fresh run against it with a generous tolerance (ratios are
host-independent, wall times are not).

Knobs: ``CHEETAH_BENCH_N`` rows (default 1,000,000 — CI smoke uses a
small value), ``CHEETAH_BENCH_BATCH`` batch size,
``CHEETAH_BENCH_REPS`` best-of repetitions.
"""

from __future__ import annotations

import numpy as np

from repro.engine.cluster import Cluster, ClusterConfig
from repro.engine.expressions import col
from repro.engine.plan import (
    CountOp,
    DistinctOp,
    FilterOp,
    GroupByOp,
    Query,
    TopNOp,
)
from repro.engine.reference import run_reference
from repro.engine.table import Table
from repro.switch.fuse import clear_fused_cache, fused_cache_stats

from _harness import bench_streams, best_of, emit, env_int, table

BENCH_N = env_int("CHEETAH_BENCH_N", 1_000_000)
BATCH_SIZE = env_int("CHEETAH_BENCH_BATCH", 65536)
REPS = env_int("CHEETAH_BENCH_REPS", 3)
WORKERS = 4

#: The acceptance bar for the fully-fusable packed workload.  Only
#: asserted at benchmark scale — sub-100k smoke streams are dominated
#: by fixed setup costs, not the per-batch dataplane being measured.
TARGET_SPEEDUP = 3.0


def _tables() -> dict:
    streams = bench_streams(BENCH_N)
    return {
        "Packed": Table(
            "Packed",
            {
                "price": streams["values"],
                "qty": streams["qty"],
                "url": streams["keys"],
                "agent": streams["group_keys"],
            },
        )
    }


def _workloads():
    packable = [
        Query(CountOp("Packed", (col("price") > 120.0) & (col("qty") <= 24))),
        Query(FilterOp("Packed", col("price") > 450.0)),
        Query(CountOp("Packed", col("qty") <= 4)),
        Query(TopNOp("Packed", "price", 250)),
    ]
    mixed = packable[:2] + [
        Query(DistinctOp("Packed", ("url",))),
        Query(GroupByOp("Packed", "agent", "price", "max")),
    ]
    return [("packable", packable), ("mixed", mixed)]


def _run_packed(queries, tables, fused):
    config = ClusterConfig(
        batch_size=BATCH_SIZE, fused=fused, topn_randomized=False
    )
    cluster = Cluster(workers=WORKERS, config=config)
    return cluster.run_packed(queries, tables)


def test_fused_pipelines_report():
    """Race fused vs per-pruner packed passes; emit the comparison table."""
    tables = _tables()
    clear_fused_cache()
    rows = []
    figures = {
        "entries": BENCH_N,
        "batch_size": BATCH_SIZE,
        "workers": WORKERS,
        "workloads": {},
    }
    for name, queries in _workloads():
        expected = [run_reference(query, tables) for query in queries]
        fused_s, fused_result = best_of(
            lambda: _run_packed(queries, tables, fused=True), REPS
        )
        plain_s, plain_result = best_of(
            lambda: _run_packed(queries, tables, fused=False), REPS
        )
        fused_outputs = [r.output for r in fused_result.results]
        plain_outputs = [r.output for r in plain_result.results]
        assert fused_outputs == expected, f"{name}: fused output diverges"
        assert plain_outputs == expected, f"{name}: per-pruner output diverges"
        assert fused_result.total_streamed == plain_result.total_streamed
        assert fused_result.total_forwarded == plain_result.total_forwarded
        speedup = plain_s / fused_s
        figures["workloads"][name] = {
            "queries": len(queries),
            "fused_s": fused_s,
            "per_pruner_s": plain_s,
            "fused_entries_per_s": BENCH_N / fused_s,
            "per_pruner_entries_per_s": BENCH_N / plain_s,
            "speedup": speedup,
        }
        rows.append(
            [
                name,
                len(queries),
                f"{BENCH_N:,}",
                f"{BENCH_N / plain_s:,.0f}",
                f"{BENCH_N / fused_s:,.0f}",
                f"{speedup:.1f}x",
            ]
        )
    figures["fused_plan_cache"] = fused_cache_stats()
    lines = table(
        [
            "workload",
            "queries",
            "entries",
            "per-pruner entries/s",
            "fused entries/s",
            "speedup",
        ],
        rows,
    )
    lines.append("")
    lines.append(
        f"packed stream, batch={BATCH_SIZE:,}, workers={WORKERS}, "
        f"best-of-{REPS}; outputs verified against the reference executor"
    )
    emit("fused_pipelines", lines, figures)
    if BENCH_N >= 200_000:
        packable = figures["workloads"]["packable"]["speedup"]
        assert packable >= TARGET_SPEEDUP, (
            f"fused packable speedup {packable:.2f}x is below the "
            f"{TARGET_SPEEDUP:.0f}x acceptance bar"
        )


if __name__ == "__main__":
    test_fused_pipelines_report()
