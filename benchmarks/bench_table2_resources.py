"""Table 2: per-algorithm hardware resource consumption.

Recomputes the paper's Table 2 from the compiler's closed forms at the
paper's default parameters and verifies every row fits the Tofino-like
resource model.  The timed kernel is the compile-and-check path.
"""

from __future__ import annotations

from repro.switch.compiler import table2
from repro.switch.resources import TOFINO

from _harness import emit, table


def _rows():
    for fp in table2(TOFINO):
        yield (
            fp.label,
            fp.stages,
            fp.alus,
            f"{fp.sram_bits / 8 / 1024:.1f} KB",
            fp.tcam_entries,
            "yes" if fp.fits(TOFINO) else "NO",
        )


def test_table2_resources(benchmark):
    lines = table(
        ["algorithm", "stages", "ALUs", "SRAM", "TCAM", "fits Tofino"], _rows()
    )
    emit("table2_resources", lines)
    benchmark(lambda: [fp.fits(TOFINO) for fp in table2(TOFINO)])
    assert all(fp.fits(TOFINO) for fp in table2(TOFINO))
