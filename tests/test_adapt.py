"""The self-healing adaptive runtime: store, planner, engine, fences.

Exercises :mod:`repro.adapt` with deterministic fakes: the
:class:`~repro.adapt.AdaptiveConfigStore` batch-boundary fence, action
planning with footprint validation, the remediation engine's
confirmation/canary/rollback lifecycle under an injected clock, the
circuit breaker with freeze expiry, signature-scoped cache
invalidation, and the satellite robustness fixes (admission cold start,
health-store eviction under churn).
"""

from __future__ import annotations

import time

import pytest

from repro.adapt import (
    OUTCOMES,
    AdaptiveConfigStore,
    RemediationAction,
    RemediationEngine,
    plan_action,
)
from repro.engine.cluster import ClusterConfig
from repro.errors import ConfigurationError, Overloaded
from repro.obs import EventLog, HealthStore, MetricsRegistry
from repro.serve.admission import AdmissionController, Request
from repro.serve.cache import ProgramCache, ResultCache


# ---------------------------------------------------------------------------
# adaptive config store: the batch-boundary fence


def test_stage_promotes_immediately_when_idle():
    store = AdaptiveConfigStore(ClusterConfig())
    override = ClusterConfig(distinct_rows=128)
    version = store.stage("q", override)
    assert version == 1
    assert store.active("q") is override
    assert store.effective("q") is override
    assert not store.pending("q")


def test_stage_defers_promotion_until_lease_exit():
    store = AdaptiveConfigStore(ClusterConfig())
    override = ClusterConfig(distinct_rows=128)
    with store.lease("q") as pinned:
        assert pinned is None
        store.stage("q", override)
        # Staged mid-pass: the running pass keeps its pinned config.
        assert store.pending("q")
        assert store.active("q") is None
    # Lease exit is the batch boundary.
    assert not store.pending("q")
    assert store.active("q") is override


def test_promotion_waits_for_last_inflight_lease():
    store = AdaptiveConfigStore(ClusterConfig())
    override = ClusterConfig(distinct_rows=128)
    outer = store.lease("q")
    inner = store.lease("q")
    outer.__enter__()
    inner.__enter__()
    store.stage("q", override)
    inner.__exit__(None, None, None)
    assert store.pending("q"), "one pass still inflight"
    outer.__exit__(None, None, None)
    assert store.active("q") is override


def test_lease_pins_promoted_override_and_later_stage_waits():
    store = AdaptiveConfigStore(ClusterConfig())
    first = ClusterConfig(distinct_rows=128)
    second = ClusterConfig(distinct_rows=256)
    store.stage("q", first)
    with store.lease("q") as pinned:
        assert pinned is first
        store.stage("q", second)
        assert store.active("q") is first
    assert store.active("q") is second
    assert store.version("q") == 2


def test_stage_none_reverts_to_base_config():
    base = ClusterConfig()
    store = AdaptiveConfigStore(base)
    store.stage("q", ClusterConfig(distinct_rows=128))
    store.stage("q", None)
    assert store.active("q") is None
    assert store.effective("q") is base
    assert store.version("q") == 2


def test_snapshot_reports_per_signature_state():
    store = AdaptiveConfigStore(ClusterConfig())
    store.stage("q", ClusterConfig(distinct_rows=128))
    snap = store.snapshot()
    assert snap["q"]["version"] == 1
    assert snap["q"]["overridden"]
    assert not snap["q"]["staged"]
    assert snap["q"]["promotions"] == 1


# ---------------------------------------------------------------------------
# action planning


def test_plan_distinct_resize_doubles_rows():
    config = ClusterConfig(distinct_rows=512)
    action = plan_action("pruning_collapse", "distinct", config)
    assert action.action == "sketch-resize"
    assert action.config.distinct_rows == 1024
    assert action.metric == "pruning_ratio"
    assert action.higher_is_better
    assert not action.hot_swap


def test_plan_distinct_falls_back_to_policy_swap_when_resize_cannot_fit():
    # A cache already at the SRAM budget cannot double; the planner
    # offers the replacement-policy swap instead of nothing.
    config = ClusterConfig(distinct_rows=1 << 24)
    action = plan_action("cache_fill_alarm", "distinct", config)
    assert action.action == "variant-swap"
    assert action.config.distinct_policy == "fifo"
    assert action.config.distinct_rows == config.distinct_rows


def test_plan_topn_deterministic_swaps_to_randomized_hot_swap():
    config = ClusterConfig(topn_randomized=False)
    action = plan_action("pruning_collapse", "topn", config)
    assert action.action == "variant-swap"
    assert action.config.topn_randomized
    assert action.hot_swap, "changes the fused-plan classification"


def test_plan_topn_randomized_resizes_rows():
    config = ClusterConfig(topn_randomized=True, topn_rows=1024)
    action = plan_action("pruning_collapse", "topn", config)
    assert action.action == "sketch-resize"
    assert action.config.topn_rows == 2048


def test_plan_join_resize_judged_by_error_metric():
    config = ClusterConfig(join_memory_bits=1 << 20)
    action = plan_action("bloom_fpr_alarm", "join", config)
    assert action.config.join_memory_bits == 2 << 20
    assert action.metric == "bloom_fpr"
    assert not action.higher_is_better
    fill = plan_action("bloom_fill_growth", "join", config)
    assert fill.metric == "bloom_fill"


def test_plan_groupby_and_having_resizes():
    assert (
        plan_action("pruning_collapse", "groupby", ClusterConfig()).config.groupby_rows
        == 2 * ClusterConfig().groupby_rows
    )
    assert (
        plan_action("cache_fill_alarm", "having", ClusterConfig()).config.having_width
        == 2 * ClusterConfig().having_width
    )


def test_plan_unknown_detector_or_operator_is_unactionable():
    assert plan_action("latency_spike", "distinct", ClusterConfig()) is None
    assert plan_action("pruning_collapse", None, ClusterConfig()) is None
    assert plan_action("pruning_collapse", "skyline", ClusterConfig()) is None


# ---------------------------------------------------------------------------
# remediation engine lifecycle (fake health, fake clock)


class FakeHealth:
    """A scriptable HealthStore facade for deterministic engine tests."""

    def __init__(self) -> None:
        self.run_counts = {}
        self.op_kinds = {}
        self.means = {}
        self.degraded = {}

    def runs(self, signature):
        return self.run_counts.get(signature, 0)

    def op_kind(self, signature):
        return self.op_kinds.get(signature)

    def recent_mean(self, signature, signal, samples):
        return self.means.get((signature, signal))

    def snapshot(self):
        return [
            {"signature": signature, "degraded": [detector]}
            for signature, detector in self.degraded.items()
        ]


class FakeClock:
    """A monotonic clock the test advances by hand."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


def make_engine(**overrides):
    health = FakeHealth()
    store = AdaptiveConfigStore(ClusterConfig(distinct_rows=64))
    events = EventLog()
    registry = MetricsRegistry()
    clock = FakeClock()
    invalidated = []
    options = dict(
        health=health,
        store=store,
        events=events,
        registry=registry,
        invalidate=invalidated.append,
        cooldown_s=0.0,
        canary_runs=3,
        clock=clock,
    )
    options.update(overrides)
    engine = RemediationEngine(**options)
    return engine, health, store, events, registry, clock, invalidated


def degrade(health, signature="q", detector="pruning_collapse", runs=10, mean=0.05):
    health.degraded[signature] = detector
    health.op_kinds[signature] = "distinct"
    health.run_counts[signature] = runs
    health.means[("q", "pruning_ratio")] = mean


def counter_value(registry, name, **labels):
    key = name + "{" + ",".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}"
    return registry.counter_values().get(key, 0)


def test_engine_waits_for_confirmation_window_before_acting():
    engine, health, store, _, _, _, _ = make_engine()
    degrade(health, runs=10)
    assert engine.tick() == 0, "first sighting only opens the window"
    assert store.version("q") == 0
    # Degradation must persist for canary_runs further runs.
    health.run_counts["q"] = 12
    assert engine.tick() == 0
    health.run_counts["q"] = 13
    assert engine.tick() == 1
    assert store.version("q") == 1


def run_until_applied(engine, health, store):
    """Open and pass the confirmation window, returning the new version."""
    before = store.version("q")
    engine.tick()
    health.run_counts["q"] += engine.canary_runs
    engine.tick()
    assert store.version("q") == before + 1
    return store.version("q")


def test_engine_commits_on_measured_improvement():
    engine, health, store, events, registry, _, invalidated = make_engine()
    degrade(health, mean=0.05)
    run_until_applied(engine, health, store)
    assert store.active("q").distinct_rows == 128
    assert invalidated == ["q"]
    # Canary window not yet filled: no verdict.
    assert engine.tick() == 0
    health.run_counts["q"] += engine.canary_runs
    health.means[("q", "pruning_ratio")] = 0.60
    assert engine.tick() >= 1
    stats = engine.stats()["signatures"]["q"]
    assert stats["committed"] == 1
    assert not stats["pending_canary"]
    assert stats["actions_since_commit"] == 0, "commit re-arms the budget"
    assert store.active("q").distinct_rows == 128, "committed config stays"
    assert counter_value(
        registry, "adapt_actions_total", action="sketch-resize", outcome="committed"
    ) == 1
    kinds = [e["kind"] for e in events.snapshot()]
    assert "remediation-action" in kinds
    assert "remediation-rollback" not in kinds


def test_engine_rolls_back_without_improvement():
    engine, health, store, events, registry, _, invalidated = make_engine()
    degrade(health, mean=0.05)
    run_until_applied(engine, health, store)
    health.run_counts["q"] += engine.canary_runs
    # The canary window measured no better than the baseline.
    health.means[("q", "pruning_ratio")] = 0.05
    engine.tick()
    assert store.active("q") is None, "prior (base) configuration restored"
    assert store.version("q") == 2, "rollback is itself a fenced stage"
    assert invalidated == ["q", "q"], "caches invalidated on apply AND rollback"
    assert counter_value(
        registry, "adapt_actions_total", action="sketch-resize", outcome="rolled-back"
    ) == 1
    rollback = [e for e in events.snapshot() if e["kind"] == "remediation-rollback"]
    assert len(rollback) == 1
    assert rollback[0]["labels"]["signature"] == "q"
    assert rollback[0]["labels"]["action"] == "sketch-resize"


def test_engine_rolls_back_when_canary_signal_never_materialized():
    engine, health, store, _, _, _, _ = make_engine()
    degrade(health)
    run_until_applied(engine, health, store)
    health.run_counts["q"] += engine.canary_runs
    health.means[("q", "pruning_ratio")] = None
    engine.tick()
    assert store.active("q") is None, "no measurement is never improvement"


def test_engine_requires_margin_not_noise():
    engine, health, store, _, _, _, _ = make_engine(min_delta=0.01)
    degrade(health, mean=0.50)
    run_until_applied(engine, health, store)
    health.run_counts["q"] += engine.canary_runs
    # +0.4% on a 50% baseline is inside the noise margin (5% relative).
    health.means[("q", "pruning_ratio")] = 0.504
    engine.tick()
    assert store.active("q") is None, "sub-margin gain rolls back"


def test_unactionable_detection_is_counted_not_guessed():
    engine, health, store, _, registry, _, _ = make_engine()
    degrade(health)
    health.op_kinds["q"] = "skyline"  # no safe action for this operator
    engine.tick()
    health.run_counts["q"] += engine.canary_runs
    engine.tick()
    assert store.version("q") == 0, "no config was staged"
    assert counter_value(
        registry, "adapt_actions_total", action="none", outcome="unactionable"
    ) == 1


def test_circuit_breaker_freezes_flapping_signature_then_rearms():
    engine, health, store, events, registry, clock, _ = make_engine(
        max_actions=2, freeze_s=30.0
    )
    degrade(health, mean=0.05)

    def flap_once():
        run_until_applied(engine, health, store)
        health.run_counts["q"] += engine.canary_runs
        engine.tick()  # canary fails (mean never changes) -> rollback

    flap_once()
    flap_once()
    # Budget (2) exhausted: the next planned action trips the breaker.
    engine.tick()
    health.run_counts["q"] += engine.canary_runs
    engine.tick()
    frozen = [e for e in events.snapshot() if e["kind"] == "remediation-frozen"]
    assert len(frozen) == 1
    assert frozen[0]["labels"]["signature"] == "q"
    assert counter_value(
        registry, "adapt_actions_total", action="sketch-resize", outcome="frozen"
    ) == 1
    version = store.version("q")
    # Frozen: ticks change nothing no matter how degraded the signal.
    for _ in range(5):
        health.run_counts["q"] += 1
        assert engine.tick() == 0
    assert store.version("q") == version
    assert engine.stats()["signatures"]["q"]["frozen"]
    # Freeze expiry re-arms the budget; the engine may act again.
    clock.now += 31.0
    run_until_applied(engine, health, store)
    assert store.version("q") == version + 1
    assert len(
        [e for e in events.snapshot() if e["kind"] == "remediation-frozen"]
    ) == 1, "one structured event per freeze"


def test_cooldown_blocks_back_to_back_actions():
    engine, health, store, _, _, clock, _ = make_engine(cooldown_s=5.0)
    degrade(health)
    run_until_applied(engine, health, store)
    health.run_counts["q"] += engine.canary_runs
    engine.tick()  # rollback (no improvement) at t=0; cooldown until t=5
    version = store.version("q")
    health.run_counts["q"] += engine.canary_runs
    assert engine.tick() == 0, "cooling down"
    clock.now = 6.0
    engine.tick()
    health.run_counts["q"] += engine.canary_runs
    engine.tick()
    assert store.version("q") == version + 1


def test_hot_swap_actions_double_counted():
    def planner(detector, op_kind, config):
        from dataclasses import replace

        return RemediationAction(
            action="variant-swap",
            config=replace(config, topn_randomized=True),
            detail="forced",
            metric="pruning_ratio",
            hot_swap=True,
        )

    engine, health, store, _, registry, _, _ = make_engine(planner=planner)
    degrade(health)
    run_until_applied(engine, health, store)
    assert counter_value(
        registry, "adapt_actions_total", action="variant-swap", outcome="applied"
    ) == 1
    assert counter_value(
        registry, "adapt_actions_total", action="hot-swap", outcome="applied"
    ) == 1


def test_degraded_signature_stays_actionable_after_event_scrolls_away():
    # Hysteresis emits ONE degradation event per excursion; the engine
    # must keep acting off the health snapshot's active excursions.
    engine, health, store, _, _, _, _ = make_engine()
    degrade(health)
    events_free_engine = engine  # no degradation event was ever emitted
    run_until_applied(events_free_engine, health, store)
    assert store.version("q") == 1


def test_engine_validates_guardrail_parameters():
    health = FakeHealth()
    store = AdaptiveConfigStore(ClusterConfig())
    with pytest.raises(ConfigurationError):
        RemediationEngine(health=health, store=store, canary_runs=0)
    with pytest.raises(ConfigurationError):
        RemediationEngine(health=health, store=store, max_actions=0)


def test_engine_consumes_degradation_events():
    engine, health, store, events, _, _, _ = make_engine()
    health.op_kinds["q"] = "distinct"
    health.run_counts["q"] = 10
    health.means[("q", "pruning_ratio")] = 0.05
    # Degradation arrives only as an event (hysteresis already reset the
    # snapshot flag): the engine must still pick it up via its cursor.
    events.emit(
        "degradation",
        "pruning collapsed",
        source="health",
        severity="warning",
        detector="pruning_collapse",
        signature="q",
    )
    engine.tick()  # opens the confirmation window off the event
    health.run_counts["q"] = 13
    engine.tick()
    assert store.version("q") == 1


def test_outcomes_tuple_is_stable():
    assert OUTCOMES == (
        "applied",
        "committed",
        "rolled-back",
        "frozen",
        "unactionable",
    )


# ---------------------------------------------------------------------------
# version-fenced cache invalidation


class _Plan:
    """A query stub exposing cache_key()."""

    def __init__(self, key: str) -> None:
        self._key = key

    def cache_key(self) -> str:
        return self._key


def test_program_cache_invalidate_drops_solo_and_fused_entries():
    cache = ProgramCache()
    cache.footprint(_Plan("sig-a"), lambda: "fp-a")
    cache.footprint(_Plan("sig-b"), lambda: "fp-b")
    # A fused plan over both signatures, keyed by the member tuple.
    cache._lru.put(("fused", ("sig-a", "sig-b"), ("col",)), "plan")
    cache._lru.put(("fused", ("sig-b",), ("col",)), "plan-b")
    assert cache.invalidate_signature("sig-a") == 2
    assert cache.footprint(_Plan("sig-b"), lambda: "rebuilt") == "fp-b"
    hit, _ = cache._lru.get(("fused", ("sig-b",), ("col",)))
    assert hit, "fused plans not touching the signature survive"


def test_result_cache_invalidate_drops_every_version():
    cache = ResultCache()
    cache.put("sig-a", 1, {1})
    cache.put("sig-a", 2, {2})
    cache.put("sig-b", 1, {3})
    assert cache.invalidate_signature("sig-a") == 2
    assert cache.get("sig-a", 1) == (False, None)
    assert cache.get("sig-a", 2) == (False, None)
    hit, output = cache.get("sig-b", 1)
    assert hit and output == frozenset({3})


def test_event_log_since_and_last_seq():
    log = EventLog(capacity=4)
    for i in range(6):
        log.emit("k", f"m{i}")
    assert log.last_seq == 6
    fresh = log.since(4)
    assert [e.seq for e in fresh] == [5, 6]
    assert log.since(6) == []
    # Ring eviction: seqs 1-2 are gone, not re-delivered.
    assert [e.seq for e in log.since(0)] == [3, 4, 5, 6]


# ---------------------------------------------------------------------------
# satellite: admission EWMA cold start


class _Query:
    def describe(self) -> str:
        return "stub"


def test_cold_start_burst_with_deadlines_is_not_shed():
    admission = AdmissionController(max_depth=16, concurrency=1)
    assert admission.ewma_seconds is None
    assert admission.estimated_wait() == 0.0
    # A burst with tight deadlines arrives before ANY completion: no
    # measured history exists, so deadline shedding must not act.
    for _ in range(8):
        admission.admit(Request(_Query(), deadline=time.monotonic() + 0.25))
    assert admission.depth == 8


def test_first_completion_seeds_ewma_exactly():
    admission = AdmissionController(max_depth=16, concurrency=2)
    admission.note_service_seconds(2.0)
    assert admission.ewma_seconds == 2.0, "seeded, not blended with a prior"
    admission.note_service_seconds(4.0)
    assert admission.ewma_seconds == pytest.approx(2.0 * 0.8 + 4.0 * 0.2)


def test_deadline_shedding_acts_once_history_exists():
    admission = AdmissionController(max_depth=16, concurrency=1)
    admission.admit(Request(_Query(), deadline=time.monotonic() + 30.0))
    admission.note_service_seconds(10.0)
    # Backlog of 1 x 10s estimate: a 50ms deadline cannot be met.
    with pytest.raises(Overloaded) as caught:
        admission.admit(Request(_Query(), deadline=time.monotonic() + 0.05))
    assert caught.value.reason == "deadline"


def test_zero_measured_service_time_still_counts_as_seeded():
    admission = AdmissionController(max_depth=16, concurrency=1)
    admission.note_service_seconds(0.0)
    assert admission.ewma_seconds == 0.0
    assert admission.estimated_wait() == 0.0


# ---------------------------------------------------------------------------
# satellite: health-store signature eviction under churn


class FakeResult:
    def __init__(self, pruning_rate: float) -> None:
        self.pruning_rate = pruning_rate
        self.metrics = None
        self.op_kind = "distinct"


def test_eviction_under_churn_bounds_the_store():
    store = HealthStore(max_signatures=2)
    for i in range(50):
        store.observe_run(f"sig-{i}", FakeResult(0.5), 0.01)
    assert len(store) == 2
    assert store.runs("sig-49") == 1
    assert store.runs("sig-0") == 0, "evicted signatures leave no state"


def test_recently_observed_signature_survives_churn():
    store = HealthStore(max_signatures=2)
    for i in range(20):
        store.observe_run("hot", FakeResult(0.5), 0.01)
        store.observe_run(f"cold-{i}", FakeResult(0.5), 0.01)
    assert store.runs("hot") == 20, "recency keeps the live signature"
    assert len(store) == 2


def test_evicted_signature_returns_with_fresh_detector_state():
    store = HealthStore(max_signatures=2, min_samples=2, collapse_floor=0.05)
    events = []
    # Drive "victim" into a pruning collapse (active excursion).
    for _ in range(6):
        store.observe_run("victim", FakeResult(0.9), 0.01)
    for _ in range(6):
        store.observe_run("victim", FakeResult(0.0), 0.01)
    degraded = {
        entry["signature"]: entry["degraded"] for entry in store.snapshot()
    }
    assert "pruning_collapse" in degraded["victim"]
    # Churn it out, then bring it back healthy.
    store.observe_run("a", FakeResult(0.5), 0.01)
    store.observe_run("b", FakeResult(0.5), 0.01)
    assert store.runs("victim") == 0
    store.observe_run("victim", FakeResult(0.9), 0.01)
    entry = [e for e in store.snapshot() if e["signature"] == "victim"][0]
    assert entry["runs"] == 1, "windows do not leak across eviction"
    assert entry["degraded"] == [], "detector state re-armed on return"
    assert events == []


def test_remediation_accessors_on_evicted_signature_are_safe():
    store = HealthStore(max_signatures=1)
    store.observe_run("gone", FakeResult(0.5), 0.01)
    store.observe_run("here", FakeResult(0.5), 0.01)
    assert store.op_kind("gone") is None
    assert store.recent_mean("gone", "pruning_ratio", 3) is None
    assert store.signal_values("gone", "pruning_ratio") == []
