"""Tests for the Cheetah packet formats (repro.net.packets)."""

from __future__ import annotations

import pytest

from repro.errors import ProtocolError
from repro.net.packets import (
    ACK_FROM_MASTER,
    ACK_FROM_SWITCH,
    CheetahAck,
    CheetahPacket,
)


class TestCheetahPacket:
    def test_roundtrip_single_value(self):
        packet = CheetahPacket(fid=3, seq=42, values=(123,))
        assert CheetahPacket.decode(packet.encode()) == packet

    def test_roundtrip_multi_value(self):
        # Variable-length header: JOIN/GROUP BY carry two or more values.
        packet = CheetahPacket(fid=1, seq=7, values=(10, -20, 30))
        decoded = CheetahPacket.decode(packet.encode())
        assert decoded.values == (10, -20, 30)

    def test_roundtrip_flags(self):
        packet = CheetahPacket(fid=0, seq=0, values=(), fin=True, retransmit=True)
        decoded = CheetahPacket.decode(packet.encode())
        assert decoded.fin and decoded.retransmit

    def test_fid_bounds(self):
        with pytest.raises(ProtocolError):
            CheetahPacket(fid=1 << 16, seq=0)

    def test_seq_bounds(self):
        with pytest.raises(ProtocolError):
            CheetahPacket(fid=0, seq=1 << 32)

    def test_value_count_bounded_by_n_field(self):
        with pytest.raises(ProtocolError):
            CheetahPacket(fid=0, seq=0, values=tuple(range(256)))

    def test_decode_rejects_truncated(self):
        packet = CheetahPacket(fid=0, seq=0, values=(1, 2))
        with pytest.raises(ProtocolError):
            CheetahPacket.decode(packet.encode()[:-1])

    def test_decode_rejects_too_short(self):
        with pytest.raises(ProtocolError):
            CheetahPacket.decode(b"abc")

    def test_as_retransmit(self):
        packet = CheetahPacket(fid=1, seq=2, values=(3,))
        retx = packet.as_retransmit()
        assert retx.retransmit
        assert retx.seq == packet.seq and retx.values == packet.values

    def test_wire_bytes(self):
        packet = CheetahPacket(fid=0, seq=0, values=(1, 2))
        assert packet.wire_bytes == len(packet.encode())


class TestCheetahAck:
    def test_roundtrip(self):
        ack = CheetahAck(fid=5, seq=99, origin=ACK_FROM_SWITCH)
        assert CheetahAck.decode(ack.encode()) == ack

    def test_origin_distinguishes_pruned(self):
        # §7.2: the switch ACKs pruned packets; the master ACKs received ones.
        assert ACK_FROM_MASTER != ACK_FROM_SWITCH

    def test_decode_rejects_wrong_length(self):
        with pytest.raises(ProtocolError):
            CheetahAck.decode(b"xy")
