"""Tests for query plans and the reference executor (repro.engine)."""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest

from repro.engine.expressions import col
from repro.engine.plan import (
    CountOp,
    DistinctOp,
    FilterOp,
    GroupByOp,
    HavingOp,
    JoinOp,
    Query,
    SkylineOp,
    TopNOp,
)
from repro.engine.reference import run_reference
from repro.engine.table import Table
from repro.errors import PlanError


@pytest.fixture
def tables(products_table, ratings_table):
    return {"Products": products_table, "Ratings": ratings_table}


class TestPlanValidation:
    def test_distinct_needs_columns(self):
        with pytest.raises(PlanError):
            DistinctOp("t", ())

    def test_topn_positive_n(self):
        with pytest.raises(PlanError):
            TopNOp("t", "c", 0)

    def test_skyline_needs_two_dims(self):
        with pytest.raises(PlanError):
            SkylineOp("t", ("only-one",))

    def test_describe_mentions_operator(self):
        assert "DISTINCT" in DistinctOp("t", ("c",)).describe()
        assert "TOP 3" in TopNOp("t", "c", 3).describe()
        assert "JOIN" in JoinOp("a", "b", "x", "y").describe()

    def test_stream_columns_include_where(self):
        query = Query(DistinctOp("t", ("c",)), where=col("d") > 1)
        assert query.stream_columns() == ["c", "d"]

    def test_join_right_columns(self):
        op = JoinOp("a", "b", "x", "y")
        assert op.stream_columns() == ["x"]
        assert op.right_stream_columns() == ["y"]


class TestReferenceExecutor:
    def test_count(self, tables):
        query = Query(CountOp("Products", col("price") > 4))
        assert run_reference(query, tables) == 2  # Pizza 7, Jello 5

    def test_filter_row_ids(self, tables):
        query = Query(FilterOp("Products", col("price") > 4))
        assert run_reference(query, tables) == {1, 3}

    def test_distinct_single_column(self, tables):
        query = Query(DistinctOp("Products", ("seller",)))
        assert run_reference(query, tables) == {"McCheetah", "Papizza", "JellyFish"}

    def test_distinct_multi_column(self, tables):
        query = Query(DistinctOp("Products", ("seller", "price")))
        result = run_reference(query, tables)
        assert ("McCheetah", 4) in result
        assert len(result) == 4

    def test_topn_paper_example(self, tables):
        # TOP 3 ... ORDER BY taste -> Jello 9, Cheetos 8, Pizza 7.
        query = Query(TopNOp("Ratings", "taste", 3))
        assert run_reference(query, tables) == [9, 8, 7]

    def test_groupby_max(self, tables):
        query = Query(GroupByOp("Products", "seller", "price", "max"))
        assert run_reference(query, tables) == {
            "McCheetah": 4,
            "Papizza": 7,
            "JellyFish": 5,
        }

    def test_groupby_min(self, tables):
        query = Query(GroupByOp("Products", "seller", "price", "min"))
        assert run_reference(query, tables)["McCheetah"] == 2

    def test_having_paper_example(self, tables):
        # HAVING SUM(price) > 5 -> McCheetah (6), Papizza (7).
        query = Query(HavingOp("Products", "seller", "price", 5, "sum"))
        assert run_reference(query, tables) == {"McCheetah", "Papizza"}

    def test_having_count(self, tables):
        query = Query(HavingOp("Products", "seller", "price", 1, "count"))
        assert run_reference(query, tables) == {"McCheetah"}

    def test_join_paper_example(self, tables):
        # Products ⋈ Ratings on name: 4 matches (Cheetos unmatched).
        query = Query(JoinOp("Products", "Ratings", "name", "name"))
        result = run_reference(query, tables)
        assert result == Counter({"Burger": 1, "Pizza": 1, "Fries": 1, "Jello": 1})

    def test_skyline_paper_example(self, tables):
        # SKYLINE OF taste, texture -> Cheetos (8,6), Jello (9,4), Burger (5,7).
        query = Query(SkylineOp("Ratings", ("taste", "texture")))
        assert run_reference(query, tables) == {(8.0, 6.0), (9.0, 4.0), (5.0, 7.0)}

    def test_where_prefilters(self, tables):
        query = Query(
            DistinctOp("Products", ("seller",)), where=col("price") > 4
        )
        assert run_reference(query, tables) == {"Papizza", "JellyFish"}

    def test_unknown_table_raises(self, tables):
        query = Query(DistinctOp("Nope", ("c",)))
        with pytest.raises(PlanError):
            run_reference(query, tables)

    def test_groupby_unknown_aggregate(self, tables):
        query = Query(GroupByOp("Products", "seller", "price", "median"))
        with pytest.raises(PlanError):
            run_reference(query, tables)
