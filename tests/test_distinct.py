"""Tests for DISTINCT pruning (repro.core.distinct)."""

from __future__ import annotations

import random

import pytest

from repro.core.base import Guarantee, PruneDecision
from repro.core.distinct import (
    DistinctPruner,
    FingerprintDistinctPruner,
    master_distinct,
)
from repro.errors import ConfigurationError, ResourceError
from repro.switch.resources import MINI
from repro.workloads.synthetic import random_order_stream


class TestDistinctPruner:
    def test_first_occurrence_forwarded(self):
        pruner = DistinctPruner(rows=16, cols=2)
        assert pruner.process("a") is PruneDecision.FORWARD

    def test_cached_duplicate_pruned(self):
        pruner = DistinctPruner(rows=16, cols=2)
        pruner.process("a")
        assert pruner.process("a") is PruneDecision.PRUNE

    def test_contract_on_random_stream(self):
        # The deterministic pruning contract: DISTINCT(survivors) ==
        # DISTINCT(stream), for any stream and any matrix size.
        stream = random_order_stream(3000, 400, seed=7)
        for rows, cols in [(1, 1), (4, 2), (64, 2), (512, 4)]:
            pruner = DistinctPruner(rows=rows, cols=cols)
            survivors = pruner.survivors(stream)
            assert set(master_distinct(survivors)) == set(stream)

    def test_large_matrix_prunes_all_duplicates(self):
        stream = random_order_stream(5000, 100, seed=3)
        pruner = DistinctPruner(rows=4096, cols=2)
        survivors = pruner.survivors(stream)
        assert len(survivors) == 100  # exactly one per distinct value

    def test_small_matrix_still_correct_but_prunes_less(self):
        stream = random_order_stream(5000, 1000, seed=5)
        small = DistinctPruner(rows=8, cols=1)
        large = DistinctPruner(rows=1024, cols=2)
        small_fwd = len(small.survivors(stream))
        large_fwd = len(large.survivors(list(stream)))
        assert small_fwd > large_fwd

    def test_theorem1_bound_on_duplicate_pruning(self):
        # Random-order stream, D > d ln(200 d): pruned duplicates should
        # be at least the Theorem 1 expectation (generous 0.8 slack).
        d, w = 64, 2
        distinct = 2000  # > 64 * ln(12800) ~ 605
        stream = random_order_stream(20_000, distinct, seed=11)
        pruner = DistinctPruner(rows=d, cols=w)
        survivors = pruner.survivors(stream)
        duplicates = len(stream) - distinct
        pruned = len(stream) - len(survivors)
        from repro.core.sizing import distinct_expected_pruning

        bound = distinct_expected_pruning(distinct, d, w)
        assert pruned / duplicates >= bound * 0.8

    def test_lru_beats_fifo_on_skewed_stream(self):
        rng = random.Random(2)
        # Hot values repeat frequently: LRU keeps them cached.
        stream = [rng.choice(range(10)) if rng.random() < 0.8 else rng.randrange(10_000)
                  for _ in range(5000)]
        lru = DistinctPruner(rows=4, cols=2, policy="lru")
        fifo = DistinctPruner(rows=4, cols=2, policy="fifo")
        lru_rate = 1 - len(lru.survivors(stream)) / len(stream)
        fifo_rate = 1 - len(fifo.survivors(list(stream))) / len(stream)
        assert lru_rate >= fifo_rate

    def test_reset_clears_cache_and_stats(self):
        pruner = DistinctPruner(rows=4, cols=2)
        pruner.process("a")
        pruner.reset()
        assert pruner.stats.processed == 0
        assert pruner.process("a") is PruneDecision.FORWARD

    def test_guarantee_is_deterministic(self):
        assert DistinctPruner().guarantee is Guarantee.DETERMINISTIC

    def test_footprint_matches_configuration(self):
        pruner = DistinctPruner(rows=4096, cols=2, policy="lru")
        fp = pruner.footprint()
        assert fp.stages == 2
        assert fp.sram_bits == 4096 * 2 * 64

    def test_validate_against_small_model(self):
        pruner = DistinctPruner(rows=1 << 16, cols=8)
        with pytest.raises(ResourceError):
            pruner.validate(MINI)

    def test_invalid_dimensions(self):
        with pytest.raises(ConfigurationError):
            DistinctPruner(rows=0)


class TestFingerprintDistinctPruner:
    def test_guarantee_is_probabilistic(self):
        pruner = FingerprintDistinctPruner(expected_distinct=1000)
        assert pruner.guarantee is Guarantee.PROBABILISTIC

    def test_multi_column_keys(self):
        pruner = FingerprintDistinctPruner(rows=64, cols=2, expected_distinct=100)
        assert pruner.process(("a", 1)) is PruneDecision.FORWARD
        assert pruner.process(("a", 1)) is PruneDecision.PRUNE
        assert pruner.process(("a", 2)) is PruneDecision.FORWARD

    def test_correct_with_theorem4_sizing(self):
        # delta = 1e-4 sizing: on a 2000-distinct stream no output value
        # should be lost to a fingerprint collision.
        stream = random_order_stream(10_000, 2000, seed=13)
        pruner = FingerprintDistinctPruner(
            rows=256, cols=2, expected_distinct=2000, delta=1e-4, seed=13
        )
        survivors = pruner.survivors(stream)
        assert set(survivors) == set(stream)  # every distinct value survives

    def test_tiny_fingerprints_do_collide(self):
        # Sanity check of the failure mode Theorem 4 protects against.
        stream = random_order_stream(20_000, 5000, seed=17)
        pruner = FingerprintDistinctPruner(
            rows=64, cols=4, expected_distinct=5000, fingerprint_bits=8, seed=17
        )
        survivors = set(pruner.survivors(stream))
        assert len(survivors) < 5000  # collisions wrongly pruned some values

    def test_explicit_bits_override(self):
        pruner = FingerprintDistinctPruner(expected_distinct=10, fingerprint_bits=16)
        assert pruner.scheme.bits == 16

    def test_invalid_expected_distinct(self):
        with pytest.raises(ConfigurationError):
            FingerprintDistinctPruner(expected_distinct=0)

    def test_footprint_uses_fingerprint_width(self):
        pruner = FingerprintDistinctPruner(
            rows=128, cols=2, expected_distinct=100, fingerprint_bits=32
        )
        assert pruner.footprint().sram_bits == 128 * 2 * 32

    def test_reset(self):
        pruner = FingerprintDistinctPruner(rows=16, cols=2, expected_distinct=10)
        pruner.process("x")
        pruner.reset()
        assert pruner.process("x") is PruneDecision.FORWARD


class TestMasterDistinct:
    def test_removes_false_negatives(self):
        assert master_distinct(["a", "b", "a", "c", "b"]) == ["a", "b", "c"]

    def test_preserves_first_seen_order(self):
        assert master_distinct([3, 1, 3, 2]) == [3, 1, 2]

    def test_empty(self):
        assert master_distinct([]) == []
