"""Unit tests for the observability subsystem (``repro.obs``).

Covers registry get-or-create semantics, kind conflicts, the exporters
(JSON round trip, Prometheus text format parsed line by line), spans,
in-place reset, absorb-with-relabeling, the shared null registry, and
the ``PruneStats`` thin view over registry counters.
"""

from __future__ import annotations

import re

import pytest

from repro.core.base import PruneDecision, PruneStats
from repro.errors import ConfigurationError
from repro.obs import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    null_registry,
    ratio,
    Span,
    trace,
)


# ---------------------------------------------------------------------------
# ratio helper
# ---------------------------------------------------------------------------


def test_ratio_shared_helper():
    assert ratio(1, 4) == 0.25
    assert ratio(0, 0) == 0.0
    assert ratio(5, 0) == 0.0  # zero denominator convention


# ---------------------------------------------------------------------------
# registry sample semantics
# ---------------------------------------------------------------------------


def test_counter_get_or_create_identity():
    registry = MetricsRegistry()
    a = registry.counter("entries_total", "help", pruner="X")
    b = registry.counter("entries_total", pruner="X")
    assert a is b
    other = registry.counter("entries_total", pruner="Y")
    assert other is not a
    a.inc()
    a.inc(3)
    assert a.value == 4
    assert other.value == 0


def test_counter_label_order_is_irrelevant():
    registry = MetricsRegistry()
    a = registry.counter("c_total", x="1", y="2")
    b = registry.counter("c_total", y="2", x="1")
    assert a is b


def test_counter_rejects_negative_increment():
    registry = MetricsRegistry()
    with pytest.raises(ConfigurationError):
        registry.counter("c_total").inc(-1)


def test_kind_conflict_raises():
    registry = MetricsRegistry()
    registry.counter("thing_total")
    with pytest.raises(ConfigurationError):
        registry.gauge("thing_total")
    with pytest.raises(ConfigurationError):
        registry.histogram("thing_total")


def test_invalid_metric_names_rejected():
    registry = MetricsRegistry()
    for bad in ("", "9starts_with_digit", "has space", "has-dash"):
        with pytest.raises(ConfigurationError):
            registry.counter(bad)


def test_gauge_set_is_idempotent():
    registry = MetricsRegistry()
    gauge = registry.gauge("fill_ratio")
    gauge.set(0.5)
    gauge.set(0.5)
    assert gauge.value == 0.5
    gauge.inc(-0.25)
    assert gauge.value == 0.25


def test_histogram_buckets_and_counts():
    registry = MetricsRegistry()
    hist = registry.histogram("lat_seconds", buckets=(0.1, 1.0))
    for value in (0.05, 0.5, 0.5, 2.0):
        hist.observe(value)
    assert hist.counts == [1, 2, 1]  # <=0.1, <=1.0, +Inf
    assert hist.count == 4
    assert hist.sum == pytest.approx(3.05)


def test_histogram_rejects_unsorted_buckets():
    registry = MetricsRegistry()
    with pytest.raises(ConfigurationError):
        registry.histogram("bad_seconds", buckets=(1.0, 0.1))
    with pytest.raises(ConfigurationError):
        registry.histogram("empty_seconds", buckets=())


# ---------------------------------------------------------------------------
# reset / absorb
# ---------------------------------------------------------------------------


def test_reset_zeroes_in_place_keeping_view_identity():
    registry = MetricsRegistry()
    counter = registry.counter("c_total")
    gauge = registry.gauge("g")
    hist = registry.histogram("h_seconds")
    counter.inc(7)
    gauge.set(3.0)
    hist.observe(0.2)
    with registry.trace("phase"):
        pass
    registry.reset()
    assert counter.value == 0 and gauge.value == 0.0
    assert hist.count == 0 and sum(hist.counts) == 0
    assert registry.spans == []
    # the held references are still the registered samples
    assert registry.counter("c_total") is counter
    assert registry.gauge("g") is gauge
    assert registry.histogram("h_seconds") is hist


def test_absorb_adds_counters_overwrites_gauges_merges_histograms():
    child = MetricsRegistry()
    child.counter("c_total", pruner="P").inc(5)
    child.gauge("g", pruner="P").set(0.75)
    child.histogram("h_seconds", buckets=(1.0,), pruner="P").observe(0.5)
    child.spans.append(Span("stream", 0.01))

    parent = MetricsRegistry()
    parent.counter("c_total", pruner="P", query="distinct").inc(2)
    parent.absorb(child, query="distinct")
    parent.absorb(child, query="distinct")  # counters add across absorbs

    assert parent.counter("c_total", pruner="P", query="distinct").value == 12
    assert parent.gauge("g", pruner="P", query="distinct").value == 0.75
    merged = parent.histogram("h_seconds", buckets=(1.0,), pruner="P", query="distinct")
    assert merged.count == 2 and merged.counts == [2, 0]
    assert [s.labels for s in parent.spans] == [{"query": "distinct"}] * 2
    # the child registry is untouched
    assert child.counter("c_total", pruner="P").value == 5


def test_absorb_histogram_bucket_mismatch_raises():
    child = MetricsRegistry()
    child.histogram("h_seconds", buckets=(1.0,)).observe(0.5)
    parent = MetricsRegistry()
    parent.histogram("h_seconds", buckets=(2.0,))
    with pytest.raises(ConfigurationError):
        parent.absorb(child)


# ---------------------------------------------------------------------------
# spans
# ---------------------------------------------------------------------------


def test_trace_records_span_and_histogram():
    registry = MetricsRegistry()
    with trace(registry, "stream", worker=3) as span:
        pass
    assert span.seconds >= 0.0
    assert registry.spans == [span]
    assert span.labels == {"worker": "3"}
    hist = registry.histogram("span_seconds", span="stream")
    assert hist.count == 1


def test_trace_records_span_on_exception():
    registry = MetricsRegistry()
    with pytest.raises(RuntimeError):
        with trace(registry, "doomed"):
            raise RuntimeError("boom")
    assert [s.name for s in registry.spans] == ["doomed"]
    assert registry.spans[0].seconds >= 0.0


def test_span_round_trip_and_relabel():
    span = Span("stream", 0.25, {"worker": "1"})
    assert Span.from_dict(span.to_dict()) == span
    relabeled = span.relabel(query="distinct")
    assert relabeled.labels == {"worker": "1", "query": "distinct"}
    assert span.labels == {"worker": "1"}  # original untouched


# ---------------------------------------------------------------------------
# exporters
# ---------------------------------------------------------------------------


def _populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("entries_total", "Entries seen.", pruner="X").inc(9)
    registry.counter("entries_total", "Entries seen.", pruner="Y").inc(1)
    registry.gauge("fill_ratio", "Bloom fill.", side="L").set(0.125)
    registry.histogram(
        "lat_seconds", "Latency.", buckets=(0.1, 1.0), phase="stream"
    ).observe(0.5)
    with registry.trace("stream", worker=0):
        pass
    return registry


def test_to_dict_from_dict_round_trip():
    registry = _populated_registry()
    clone = MetricsRegistry.from_dict(registry.to_dict())
    assert clone.to_dict() == registry.to_dict()
    assert clone.counter_values() == registry.counter_values()
    assert clone.gauge_values() == registry.gauge_values()


def test_counter_values_canonical_form():
    registry = _populated_registry()
    values = registry.counter_values()
    assert values["entries_total{pruner=X}"] == 9
    assert values["entries_total{pruner=Y}"] == 1


# One Prometheus text-format line: comment, or sample with optional
# labels and a numeric value.
_PROM_LINE = re.compile(
    r"^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+"
    r"|[a-zA-Z_:][a-zA-Z0-9_:]*(_bucket|_sum|_count)?"
    r'(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})?'
    r" [0-9eE.+\-]+(\+Inf)?)$"
)


def test_prometheus_export_parses_line_by_line():
    text = _populated_registry().to_prometheus()
    assert text.endswith("\n")
    lines = text.splitlines()
    assert lines, "export should not be empty"
    for line in lines:
        assert _PROM_LINE.match(line), f"unparseable exposition line: {line!r}"
    # spot-check the structural requirements of the format
    assert "# TYPE entries_total counter" in lines
    assert 'entries_total{pruner="X"} 9' in lines
    assert "# TYPE lat_seconds histogram" in lines
    assert 'lat_seconds_bucket{le="+Inf",phase="stream"} 1' in lines
    assert 'lat_seconds_count{phase="stream"} 1' in lines
    # histogram buckets are cumulative
    bucket_values = [
        int(line.rsplit(" ", 1)[1])
        for line in lines
        if line.startswith("lat_seconds_bucket")
    ]
    assert bucket_values == sorted(bucket_values)


def test_prometheus_label_escaping():
    registry = MetricsRegistry()
    registry.counter("c_total", query='say "hi"\\now').inc()
    line = [
        l for l in registry.to_prometheus().splitlines() if l.startswith("c_total{")
    ][0]
    assert '\\"hi\\"' in line and "\\\\now" in line


# ---------------------------------------------------------------------------
# null registry
# ---------------------------------------------------------------------------


def test_null_registry_is_shared_and_inert():
    null = null_registry()
    assert null is null_registry()
    assert not null.enabled
    counter = null.counter("c_total")
    counter.inc(100)
    assert counter.value == 0
    gauge = null.gauge("g")
    gauge.set(5.0)
    assert gauge.value == 0.0
    hist = null.histogram("h_seconds")
    hist.observe(1.0)
    assert hist.count == 0
    with null.trace("phase") as span:
        pass
    assert null.spans == [] and span.seconds >= 0.0
    assert null.to_dict() == {
        "counters": [],
        "gauges": [],
        "histograms": [],
        "spans": [],
    }


# ---------------------------------------------------------------------------
# PruneStats as a registry view
# ---------------------------------------------------------------------------


def test_prune_stats_records_into_registry():
    registry = MetricsRegistry()
    stats = PruneStats(registry, pruner="X")
    stats.record(PruneDecision.FORWARD)
    stats.record(PruneDecision.PRUNE)
    stats.record_batch(10, 4)
    assert stats.processed == 12
    assert stats.pruned == 5
    assert stats.forwarded == 7  # derived, not stored
    assert stats.pruning_rate == pytest.approx(5 / 12)
    values = registry.counter_values()
    assert values["pruner_entries_processed_total{pruner=X}"] == 12
    assert values["pruner_entries_pruned_total{pruner=X}"] == 5


def test_prune_stats_standalone_and_reset():
    stats = PruneStats()  # private registry when none is given
    stats.record(PruneDecision.PRUNE)
    assert (stats.processed, stats.pruned) == (1, 1)
    stats.reset()
    assert (stats.processed, stats.pruned, stats.forwarded) == (0, 0, 0)
    assert stats.pruning_rate == 0.0


# ---------------------------------------------------------------------------
# absorb_sharded (parallel-merge semantics)
# ---------------------------------------------------------------------------


def test_absorb_sharded_sums_counters_without_shard_label():
    parent = MetricsRegistry()
    parent.counter("work_total", "Work.", phase="stream").inc(3)
    shard0 = MetricsRegistry()
    shard0.counter("work_total", "Work.", phase="stream").inc(5)
    shard1 = MetricsRegistry()
    shard1.counter("work_total", "Work.", phase="stream").inc(7)
    parent.absorb_sharded(shard0, 0)
    parent.absorb_sharded(shard1, 1)
    values = parent.counter_values()
    assert values == {"work_total{phase=stream}": 15}


def test_absorb_sharded_labels_gauges_per_shard():
    parent = MetricsRegistry()
    shard = MetricsRegistry()
    shard.gauge("fill_ratio", "Fill.", pruner="topn").set(0.5)
    parent.absorb_sharded(shard, 2)
    assert parent.gauge_values() == {"fill_ratio{pruner=topn,shard=2}": 0.5}


def test_absorb_sharded_relabels_spans():
    parent = MetricsRegistry()
    shard = MetricsRegistry()
    with shard.trace("join-build"):
        pass
    parent.absorb_sharded(shard, 3)
    assert [s.name for s in parent.spans] == ["join-build"]
    assert parent.spans[0].labels["shard"] == "3"


def test_absorb_sharded_merges_histograms_bucketwise():
    parent = MetricsRegistry()
    parent.histogram("lat", "Latency.", buckets=(1.0, 2.0)).observe(0.5)
    shard = MetricsRegistry()
    shard.histogram("lat", "Latency.", buckets=(1.0, 2.0)).observe(1.5)
    parent.absorb_sharded(shard, 0)
    dump = parent.to_dict()["histograms"][0]
    assert dump["count"] == 2
    assert dump["sum"] == pytest.approx(2.0)


def test_absorb_sharded_rejects_mismatched_buckets():
    parent = MetricsRegistry()
    parent.histogram("lat", "Latency.", buckets=(1.0, 2.0)).observe(0.5)
    shard = MetricsRegistry()
    shard.histogram("lat", "Latency.", buckets=(1.0, 4.0)).observe(1.5)
    with pytest.raises(ConfigurationError):
        parent.absorb_sharded(shard, 0)


# ---------------------------------------------------------------------------
# histogram_quantile edge cases
# ---------------------------------------------------------------------------


def test_histogram_quantile_empty_histogram_is_zero():
    from repro.obs import histogram_quantile

    registry = MetricsRegistry()
    sample = registry.histogram("empty_seconds", buckets=(0.1, 1.0))
    assert histogram_quantile(sample, 0.5) == 0.0
    assert histogram_quantile(sample, 0.0) == 0.0
    assert histogram_quantile(sample, 1.0) == 0.0


def test_histogram_quantile_single_bucket_interpolates_from_zero():
    from repro.obs import histogram_quantile

    registry = MetricsRegistry()
    sample = registry.histogram("one_seconds", buckets=(2.0,))
    for _ in range(4):
        sample.observe(1.0)
    # All mass sits in the single (0, 2.0] bucket: linear interpolation
    # from the 0.0 lower edge.
    assert histogram_quantile(sample, 0.5) == pytest.approx(1.0)
    assert histogram_quantile(sample, 1.0) == pytest.approx(2.0)


def test_histogram_quantile_q0_and_q1_bounds():
    from repro.obs import histogram_quantile

    registry = MetricsRegistry()
    sample = registry.histogram("b_seconds", buckets=(0.1, 1.0, 10.0))
    sample.observe(0.05)
    sample.observe(0.5)
    sample.observe(5.0)
    assert histogram_quantile(sample, 0.0) == pytest.approx(0.0)
    q1 = histogram_quantile(sample, 1.0)
    assert 0.0 < q1 <= 10.0


def test_histogram_quantile_overflow_clamps_to_largest_finite_bound():
    from repro.obs import histogram_quantile

    registry = MetricsRegistry()
    sample = registry.histogram("o_seconds", buckets=(0.1, 1.0))
    sample.observe(50.0)  # lands in the +Inf overflow bucket
    assert histogram_quantile(sample, 0.99) == pytest.approx(1.0)


def test_histogram_quantile_out_of_range_raises():
    from repro.obs import histogram_quantile

    registry = MetricsRegistry()
    sample = registry.histogram("r_seconds", buckets=(1.0,))
    sample.observe(0.5)
    with pytest.raises(ConfigurationError):
        histogram_quantile(sample, -0.01)
    with pytest.raises(ConfigurationError):
        histogram_quantile(sample, 1.01)


# ---------------------------------------------------------------------------
# Prometheus escaping and value formatting
# ---------------------------------------------------------------------------


def test_prometheus_label_escaping_quotes_backslashes_newlines():
    registry = MetricsRegistry()
    registry.counter("esc_total", q='a"b').inc()
    registry.counter("esc_total", q="a\\b").inc()
    registry.counter("esc_total", q="a\nb").inc()
    lines = [
        l for l in registry.to_prometheus().splitlines()
        if l.startswith("esc_total{")
    ]
    rendered = "\n".join(lines)
    assert 'q="a\\"b"' in rendered
    assert 'q="a\\\\b"' in rendered
    assert 'q="a\\nb"' in rendered
    # The raw newline must never appear inside a sample line.
    assert all("\n" not in l for l in lines)


def test_prometheus_help_escaping():
    registry = MetricsRegistry()
    registry.counter("h_total", "line one\nline two \\ backslash").inc()
    help_line = [
        l for l in registry.to_prometheus().splitlines()
        if l.startswith("# HELP h_total")
    ][0]
    assert "\\n" in help_line and "\\\\" in help_line
    assert "\n" not in help_line


def test_prometheus_nonfinite_gauge_values():
    registry = MetricsRegistry()
    registry.gauge("pos_inf").set(float("inf"))
    registry.gauge("neg_inf").set(float("-inf"))
    registry.gauge("nan_val").set(float("nan"))
    text = registry.to_prometheus()
    assert "pos_inf +Inf" in text
    assert "neg_inf -Inf" in text
    assert "nan_val NaN" in text
    assert "inf inf" not in text and "nan nan" not in text


# ---------------------------------------------------------------------------
# bounded span ring
# ---------------------------------------------------------------------------


def test_span_ring_caps_and_counts_drops():
    from repro.obs import SpanRing

    drops = []
    ring = SpanRing(3, on_drop=lambda: drops.append(1))
    for i in range(5):
        ring.append(Span(f"s{i}", 0.0))
    assert len(ring) == 3
    assert [s.name for s in ring] == ["s2", "s3", "s4"]
    assert len(drops) == 2
    assert ring[0].name == "s2" and ring[-1].name == "s4"
    assert [s.name for s in ring[1:]] == ["s3", "s4"]
    ring.clear()
    assert len(ring) == 0 and not ring
    assert len(drops) == 2  # clear() is not an overflow drop


def test_span_ring_rejects_nonpositive_capacity():
    from repro.obs import SpanRing

    with pytest.raises(ConfigurationError):
        SpanRing(0)


def test_cap_spans_bounds_registry_and_counts():
    registry = MetricsRegistry()
    for i in range(4):
        with trace(registry, f"phase{i}"):
            pass
    registry.cap_spans(2)
    assert len(registry.spans) == 2
    dropped = registry.counter("spans_dropped_total")
    assert dropped.value == 2  # initial truncation counts
    with trace(registry, "next"):
        pass
    assert len(registry.spans) == 2
    assert registry.spans[-1].name == "next"
    assert dropped.value == 3
