"""Tests for predicate expressions (repro.engine.expressions)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.expressions import Between, Compare, Like, col
from repro.engine.table import Table
from repro.errors import PlanError


@pytest.fixture
def table():
    return Table(
        "t",
        {
            "taste": np.array([7, 8, 9, 5, 3]),
            "texture": np.array([5, 6, 4, 7, 3]),
            "name": np.array(["pizza", "cheetos", "jello", "burger", "eggs"]),
        },
    )


class TestCompare:
    def test_gt_mask(self, table):
        assert (col("taste") > 5).mask(table).tolist() == [True, True, True, False, False]

    def test_all_operators(self, table):
        assert (col("taste") >= 7).mask(table).sum() == 3
        assert (col("taste") < 5).mask(table).sum() == 1
        assert (col("taste") <= 5).mask(table).sum() == 2
        assert col("taste").eq(8).mask(table).sum() == 1
        assert col("taste").ne(8).mask(table).sum() == 4

    def test_unknown_operator_rejected(self):
        with pytest.raises(PlanError):
            Compare("taste", "~", 5)

    def test_columns(self):
        assert (col("taste") > 5).columns() == ["taste"]

    def test_formula_evaluates_row_tuples(self):
        expr = col("taste") > 5
        formula = expr.to_formula(["taste", "texture"])
        assert formula.evaluate((7, 0)) is True
        assert formula.evaluate((3, 9)) is False

    def test_formula_atom_is_supported(self):
        formula = (col("taste") > 5).to_formula(["taste"])
        assert all(atom.supported for atom in formula.atoms())

    def test_formula_unknown_column_raises(self):
        with pytest.raises(PlanError):
            (col("taste") > 5).to_formula(["texture"])


class TestLike:
    def test_mask_with_wildcards(self, table):
        assert Like("name", "e%s").mask(table).tolist() == [
            False, False, False, False, True,
        ]

    def test_percent_matches_any_run(self, table):
        assert Like("name", "%e%").mask(table).sum() == 4  # cheetos jello burger eggs

    def test_underscore_matches_one_char(self, table):
        assert Like("name", "p_zza").mask(table).tolist()[0] is True

    def test_formula_atom_not_supported(self):
        formula = col("name").like("e%s").to_formula(["name"])
        assert all(not atom.supported for atom in formula.atoms())

    def test_builder(self, table):
        assert col("name").like("jello").mask(table).sum() == 1


class TestBetween:
    def test_mask_inclusive(self, table):
        assert col("taste").between(5, 8).mask(table).tolist() == [
            True, True, False, True, False,
        ]

    def test_formula_is_two_supported_comparisons(self):
        formula = col("taste").between(5, 8).to_formula(["taste"])
        atoms = formula.atoms()
        assert len(atoms) == 2
        assert all(atom.supported for atom in atoms)
        assert formula.evaluate((6,)) is True
        assert formula.evaluate((9,)) is False


class TestConnectives:
    def test_and(self, table):
        expr = (col("taste") > 5) & (col("texture") > 4)
        assert expr.mask(table).tolist() == [True, True, False, False, False]

    def test_or(self, table):
        expr = (col("taste") > 8) | (col("texture") > 6)
        assert expr.mask(table).tolist() == [False, False, True, True, False]

    def test_not(self, table):
        expr = ~(col("taste") > 5)
        assert expr.mask(table).sum() == 2

    def test_paper_example_mask(self, table):
        # (taste > 5) OR (texture > 4 AND name LIKE e%s)
        expr = (col("taste") > 5) | ((col("texture") > 4) & col("name").like("e%s"))
        assert expr.mask(table).tolist() == [True, True, True, False, False]

    def test_nested_columns_deduped(self):
        expr = (col("a") > 1) & ((col("a") < 5) | (col("b") > 0))
        assert expr.columns() == ["a", "b"]

    def test_formula_matches_mask_semantics(self, table):
        expr = ((col("taste") > 5) & (col("texture") > 4)) | col("name").like("j%")
        columns = expr.columns()
        formula = expr.to_formula(columns)
        mask = expr.mask(table)
        for i, row in enumerate(table.iter_rows(columns)):
            assert formula.evaluate(row) == bool(mask[i])

    def test_repr_readable(self):
        expr = (col("taste") > 5) & ~col("name").like("x%")
        text = repr(expr)
        assert "taste" in text and "LIKE" in text
