"""Tests for Table 2 footprints and §6 packing (repro.switch.compiler)."""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigurationError, ResourceError
from repro.switch.compiler import (
    check_fits_cached,
    clear_compile_cache,
    compile_cache_stats,
    footprint_distinct,
    footprint_filtering,
    footprint_groupby,
    footprint_having,
    footprint_join,
    footprint_reliability,
    footprint_skyline,
    footprint_topn_det,
    footprint_topn_rand,
    pack,
    table2,
)
from repro.switch.resources import MB, MINI, TOFINO, ResourceModel


class TestTable2Formulas:
    """Each footprint must evaluate Table 2's closed forms exactly."""

    def test_distinct_lru_defaults(self):
        fp = footprint_distinct(cols=2, rows=4096, policy="lru")
        assert fp.stages == 2          # w
        assert fp.alus == 2            # w
        assert fp.sram_bits == 4096 * 2 * 64  # (d*w) x 64b
        assert fp.tcam_entries == 0

    def test_distinct_fifo_folds_stages(self):
        fp = footprint_distinct(cols=2, rows=4096, policy="fifo", model=TOFINO)
        assert fp.stages == math.ceil(2 / TOFINO.alus_per_stage)  # ceil(w/A)
        assert fp.alus == 2

    def test_skyline_sum_defaults(self):
        fp = footprint_skyline(dims=2, points=10, score="sum")
        log_d = 1
        assert fp.stages == log_d + 2 * 10
        assert fp.alus == 2 * log_d - 1 + 10 * 3  # 2ceil(log D)-1 + w(D+1)
        assert fp.sram_bits == 10 * 3 * 64        # w(D+1) x 64b
        assert fp.tcam_entries == 0

    def test_skyline_aph_adds_log_table_and_tcam(self):
        fp = footprint_skyline(dims=2, points=10, score="aph")
        assert fp.stages == 1 + 2 * 11            # log D + 2(w+1)
        assert fp.sram_bits == 10 * 3 * 64 + (1 << 16) * 32
        assert fp.tcam_entries == 64 * 2          # 64 * D

    def test_topn_det_defaults(self):
        fp = footprint_topn_det(thresholds=4)
        assert fp.stages == 5                     # w + 1
        assert fp.alus == 5
        assert fp.sram_bits == 5 * 64             # (w+1) x 64b

    def test_topn_rand_defaults(self):
        fp = footprint_topn_rand(cols=4, rows=4096)
        assert fp.stages == 4
        assert fp.alus == 4
        assert fp.sram_bits == 4096 * 4 * 64

    def test_groupby_defaults(self):
        fp = footprint_groupby(cols=8, rows=4096)
        assert fp.stages == 8
        assert fp.alus == 8
        assert fp.sram_bits == 4096 * 8 * 64

    def test_join_bf_defaults(self):
        fp = footprint_join(memory_bits=4 * MB, hashes=3, variant="bf")
        assert fp.stages == 2
        assert fp.alus == 3                       # H
        assert fp.sram_bits == 4 * MB             # M

    def test_join_rbf(self):
        fp = footprint_join(memory_bits=4 * MB, hashes=3, variant="rbf")
        assert fp.stages == 1
        assert fp.alus == 1
        assert fp.sram_bits == 4 * MB + math.comb(64, 3) * 64

    def test_having_defaults(self):
        fp = footprint_having(width=1024, depth=3, model=TOFINO)
        assert fp.stages == math.ceil(3 / TOFINO.alus_per_stage)  # ceil(d/A)
        assert fp.alus == 3
        assert fp.sram_bits == 1024 * 3 * 64

    def test_filtering_one_alu_per_predicate(self):
        fp = footprint_filtering(predicates=3)
        assert fp.stages == 1
        assert fp.alus == 3
        assert fp.sram_bits == 3 * 64

    def test_filtering_static_constant_needs_no_sram(self):
        assert footprint_filtering(reconfigurable=False).sram_bits == 0

    def test_reliability_two_stages(self):
        # §7.2: the protocol takes two pipeline stages on hardware.
        assert footprint_reliability().stages == 2

    def test_all_table2_defaults_fit_tofino(self):
        for fp in table2():
            fp.check_fits(TOFINO)

    def test_table2_has_ten_rows(self):
        assert len(table2()) == 10


class TestValidation:
    def test_invalid_args_raise(self):
        with pytest.raises(ConfigurationError):
            footprint_filtering(predicates=0)
        with pytest.raises(ConfigurationError):
            footprint_skyline(dims=0)
        with pytest.raises(ConfigurationError):
            footprint_skyline(score="cosine")
        with pytest.raises(ConfigurationError):
            footprint_topn_det(thresholds=0)
        with pytest.raises(ConfigurationError):
            footprint_join(memory_bits=0)
        with pytest.raises(ConfigurationError):
            footprint_join(variant="cuckoo")


class TestPacking:
    def test_parallel_pack_fits_light_queries(self):
        # §6's example: a filter packs beside a group-by on shared stages.
        combined = pack(
            [footprint_filtering(1), footprint_groupby(cols=8, rows=1024)],
            TOFINO,
        )
        assert combined.stages <= TOFINO.stages

    def test_parallel_pack_adds_selector_stage(self):
        a = footprint_filtering(1)
        b = footprint_filtering(1)
        combined = pack([a, b], TOFINO, strategy="parallel")
        assert combined.stages == 2  # max(1,1) + selector

    def test_serial_pack_adds_stages(self):
        a = footprint_topn_det(4)
        b = footprint_groupby(cols=4, rows=512)
        combined = pack([a, b], TOFINO, strategy="serial")
        assert combined.stages == a.stages + b.stages

    def test_overcommit_raises(self):
        huge = footprint_join(memory_bits=TOFINO.total_sram_bits, variant="bf")
        with pytest.raises(ResourceError):
            pack([huge, huge], TOFINO)

    def test_pack_on_mini_model_rejects_table2(self):
        with pytest.raises(ResourceError):
            pack(table2(), MINI)

    def test_empty_pack_raises(self):
        with pytest.raises(ConfigurationError):
            pack([], TOFINO)

    def test_unknown_strategy_raises(self):
        with pytest.raises(ConfigurationError):
            pack([footprint_filtering(1)], TOFINO, strategy="diagonal")

    def test_single_program_pack_is_identity_shape(self):
        fp = footprint_groupby(cols=4, rows=512)
        combined = pack([fp], TOFINO)
        assert combined.stages == fp.stages
        assert combined.alus == fp.alus


class TestCompileMemo:
    """check_fits_cached / pack memoization (keyed on signature + model)."""

    def setup_method(self):
        clear_compile_cache()

    def test_repeat_fit_checks_hit_the_cache(self):
        fp = footprint_groupby(cols=4, rows=512)
        check_fits_cached(fp, TOFINO)
        assert compile_cache_stats() == {"hits": 0, "misses": 1}
        check_fits_cached(fp, TOFINO)
        check_fits_cached(footprint_groupby(cols=4, rows=512), TOFINO)
        assert compile_cache_stats() == {"hits": 2, "misses": 1}

    def test_different_model_is_a_different_key(self):
        fp = footprint_filtering(1)
        check_fits_cached(fp, TOFINO)
        check_fits_cached(fp, MINI)
        assert compile_cache_stats()["misses"] == 2

    def test_negative_fit_verdict_is_cached_and_reraised(self):
        huge = footprint_join(memory_bits=TOFINO.total_sram_bits * 4, variant="bf")
        with pytest.raises(ResourceError) as first:
            check_fits_cached(huge, TOFINO)
        with pytest.raises(ResourceError) as second:
            check_fits_cached(huge, TOFINO)
        assert str(first.value) == str(second.value)
        assert compile_cache_stats() == {"hits": 1, "misses": 1}

    def test_pack_is_memoized(self):
        fps = [footprint_filtering(2), footprint_topn_det(4)]
        first = pack(fps, TOFINO)
        misses = compile_cache_stats()["misses"]
        second = pack([footprint_filtering(2), footprint_topn_det(4)], TOFINO)
        assert compile_cache_stats()["misses"] == misses
        assert compile_cache_stats()["hits"] >= 1
        assert second.stages == first.stages
        assert second.sram_bits == first.sram_bits

    def test_pack_failure_is_cached_and_reraised(self):
        huge = footprint_join(memory_bits=TOFINO.total_sram_bits, variant="bf")
        with pytest.raises(ResourceError):
            pack([huge, huge], TOFINO)
        with pytest.raises(ResourceError):
            pack([huge, huge], TOFINO)
        assert compile_cache_stats()["hits"] >= 1

    def test_signature_is_hashable_and_stable(self):
        fp = footprint_groupby(cols=4, rows=512)
        assert fp.signature() == footprint_groupby(cols=4, rows=512).signature()
        assert hash(fp.signature()) == hash(fp.signature())
        assert fp.signature() != footprint_groupby(cols=5, rows=512).signature()
