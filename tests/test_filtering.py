"""Tests for filtering and formula decomposition (repro.core.filtering)."""

from __future__ import annotations

import pytest

from repro.core.base import PruneDecision
from repro.core.filtering import (
    FALSE,
    TRUE,
    And,
    Atom,
    FilterPruner,
    Not,
    Or,
    TruthTable,
    Var,
)
from repro.errors import ConfigurationError


def _atom(name, fn, supported=True):
    return Var(Atom(name=name, evaluate=fn, supported=supported))


# Entries are dicts; atoms read fields.
TASTE5 = _atom("taste>5", lambda e: e["taste"] > 5)
TEXTURE4 = _atom("texture>4", lambda e: e["texture"] > 4)
NAME_LIKE = _atom("name LIKE e%s", lambda e: e["name"].startswith("e") and e["name"].endswith("s"), supported=False)


class TestFormulaEvaluation:
    def test_var(self):
        assert TASTE5.evaluate({"taste": 7}) is True
        assert TASTE5.evaluate({"taste": 3}) is False

    def test_and_or_not(self):
        entry = {"taste": 7, "texture": 3}
        assert And(TASTE5, TEXTURE4).evaluate(entry) is False
        assert Or(TASTE5, TEXTURE4).evaluate(entry) is True
        assert Not(TEXTURE4).evaluate(entry) is True

    def test_constants(self):
        assert TRUE.evaluate({}) is True
        assert FALSE.evaluate({}) is False

    def test_operator_sugar(self):
        entry = {"taste": 7, "texture": 5}
        combined = (TASTE5 & TEXTURE4) | ~TASTE5
        assert combined.evaluate(entry) is True

    def test_empty_connectives_raise(self):
        with pytest.raises(ConfigurationError):
            And()
        with pytest.raises(ConfigurationError):
            Or()


class TestRelaxation:
    """The §4.1 decomposition: unsupported atoms become tautologies."""

    def test_paper_example(self):
        # (taste>5) OR (texture>4 AND name LIKE e%s)
        #   relaxes to (taste>5) OR (texture>4).
        formula = Or(TASTE5, And(TEXTURE4, NAME_LIKE))
        relaxed = repr(formula.relax().simplify())
        assert "LIKE" not in relaxed
        assert "taste>5" in relaxed
        assert "texture>4" in relaxed

    def test_relaxed_is_implied_by_original(self):
        # Soundness: original true => relaxed true, on every assignment.
        formula = Or(And(TASTE5, NAME_LIKE), And(TEXTURE4, Not(NAME_LIKE)))
        relaxed = formula.relax().simplify()
        for taste in (3, 7):
            for texture in (3, 7):
                for name in ("eggs", "ham"):
                    entry = {"taste": taste, "texture": texture, "name": name}
                    if formula.evaluate(entry):
                        assert relaxed.evaluate(entry)

    def test_negated_unsupported_becomes_true(self):
        # NOT(unsupported) must relax to TRUE, not FALSE.
        formula = Not(NAME_LIKE)
        relaxed = formula.relax().simplify()
        assert isinstance(relaxed, type(TRUE))

    def test_all_unsupported_relaxes_to_true(self):
        relaxed = And(NAME_LIKE, Not(NAME_LIKE)).relax().simplify()
        assert relaxed.evaluate({"name": "x"}) is True

    def test_supported_atoms_survive(self):
        relaxed = And(TASTE5, NAME_LIKE).relax().simplify()
        assert relaxed.evaluate({"taste": 7, "name": "zz"}) is True
        assert relaxed.evaluate({"taste": 3, "name": "zz"}) is False

    def test_double_negation_simplifies(self):
        assert repr(Not(Not(TASTE5)).simplify()) == "taste>5"

    def test_constant_folding(self):
        assert isinstance(And(TRUE, TRUE).simplify(), type(TRUE))
        assert isinstance(And(TASTE5, FALSE).simplify(), type(FALSE))
        assert isinstance(Or(FALSE, FALSE).simplify(), type(FALSE))
        assert isinstance(Or(TASTE5, TRUE).simplify(), type(TRUE))


class TestTruthTable:
    def test_rule_count_and_accepts(self):
        formula = Or(TASTE5, TEXTURE4)
        table = TruthTable.from_formula(formula)
        assert table.rule_count() == 3  # 01, 10, 11
        assert table.accepts({"taste": 9, "texture": 0})
        assert not table.accepts({"taste": 0, "texture": 0})

    def test_vector_of(self):
        formula = And(TASTE5, TEXTURE4)
        table = TruthTable.from_formula(formula)
        assert table.vector_of({"taste": 9, "texture": 9}) == 0b11
        assert table.vector_of({"taste": 9, "texture": 0}) in (0b01, 0b10)

    def test_too_many_atoms_rejected(self):
        atoms = [_atom(f"a{i}", lambda e: True) for i in range(17)]
        with pytest.raises(ConfigurationError):
            TruthTable.from_formula(And(*atoms))

    def test_matches_formula_on_all_assignments(self):
        formula = Or(And(TASTE5, Not(TEXTURE4)), TEXTURE4)
        table = TruthTable.from_formula(formula)
        for taste in (0, 9):
            for texture in (0, 9):
                entry = {"taste": taste, "texture": texture}
                assert table.accepts(entry) == formula.evaluate(entry)


class TestFilterPruner:
    def test_prunes_relaxed_failures(self):
        pruner = FilterPruner(Or(TASTE5, And(TEXTURE4, NAME_LIKE)))
        entry = {"taste": 1, "texture": 1, "name": "eggs"}
        assert pruner.process(entry) is PruneDecision.PRUNE

    def test_forwards_relaxed_passes_even_if_full_fails(self):
        # texture>4 passes the relaxed formula; the LIKE makes the full
        # formula false — the master removes it, not the switch.
        pruner = FilterPruner(Or(TASTE5, And(TEXTURE4, NAME_LIKE)))
        entry = {"taste": 1, "texture": 9, "name": "ham"}
        assert pruner.process(entry) is PruneDecision.FORWARD
        assert pruner.residual_check(entry) is False

    def test_never_prunes_a_matching_entry(self):
        # The pruning contract for filters: full-formula-true is never pruned.
        pruner = FilterPruner(Or(And(TASTE5, NAME_LIKE), TEXTURE4))
        for taste in (0, 9):
            for texture in (0, 9):
                for name in ("eggs", "ham"):
                    entry = {"taste": taste, "texture": texture, "name": name}
                    full = pruner.formula.evaluate(entry)
                    decision = pruner.process(entry)
                    if full:
                        assert decision is PruneDecision.FORWARD

    def test_worker_assist_prunes_exactly(self):
        pruner = FilterPruner(
            Or(TASTE5, And(TEXTURE4, NAME_LIKE)), worker_assist=True
        )
        fails = {"taste": 1, "texture": 9, "name": "ham"}
        passes = {"taste": 1, "texture": 9, "name": "eggs"}
        assert pruner.process(fails) is PruneDecision.PRUNE
        assert pruner.process(passes) is PruneDecision.FORWARD

    def test_stats_track_decisions(self):
        pruner = FilterPruner(TASTE5)
        pruner.process({"taste": 9})
        pruner.process({"taste": 1})
        assert pruner.stats.processed == 2
        assert pruner.stats.pruned == 1
        assert pruner.stats.pruning_rate == 0.5

    def test_footprint_counts_switch_predicates(self):
        pruner = FilterPruner(Or(TASTE5, And(TEXTURE4, NAME_LIKE)))
        assert pruner.footprint().alus == 2  # LIKE relaxed away

    def test_survivors_helper(self):
        pruner = FilterPruner(TASTE5)
        entries = [{"taste": t} for t in (1, 6, 2, 9)]
        assert pruner.survivors(entries) == [{"taste": 6}, {"taste": 9}]

    def test_split_stream_partition(self):
        pruner = FilterPruner(TASTE5)
        entries = [{"taste": t} for t in (1, 6)]
        fwd, pruned = pruner.split_stream(entries)
        assert fwd == [{"taste": 6}]
        assert pruned == [{"taste": 1}]
