"""Tests for the seeded hash family (repro.sketches.hashing)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sketches.hashing import (
    canonical_int,
    combine,
    fingerprint,
    hash64,
    hash_family,
    hash_range,
)


class TestCanonicalInt:
    def test_int_maps_to_itself(self):
        assert canonical_int(42) == 42

    def test_negative_int_wraps_to_64_bits(self):
        assert canonical_int(-1) == (1 << 64) - 1

    def test_bool_is_not_treated_as_plain_int_one(self):
        # bool goes through its own branch but keeps int semantics.
        assert canonical_int(True) == 1
        assert canonical_int(False) == 0

    def test_string_is_stable(self):
        assert canonical_int("cheetah") == canonical_int("cheetah")

    def test_different_strings_differ(self):
        assert canonical_int("cheetah") != canonical_int("cheetha")

    def test_bytes_and_equal_string_share_encoding(self):
        assert canonical_int(b"abc") == canonical_int("abc")

    def test_float_uses_bit_pattern(self):
        assert canonical_int(1.5) == canonical_int(1.5)
        assert canonical_int(1.5) != canonical_int(1.50000001)

    def test_numpy_integer_supported(self):
        assert canonical_int(np.int64(7)) == canonical_int(7)

    def test_numpy_float_supported(self):
        assert canonical_int(np.float64(2.5)) == canonical_int(2.5)

    def test_tuple_is_order_sensitive(self):
        assert canonical_int((1, 2)) != canonical_int((2, 1))

    def test_nested_tuple_supported(self):
        assert canonical_int(((1, "a"), 2)) == canonical_int(((1, "a"), 2))

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError):
            canonical_int([1, 2, 3])


class TestHash64:
    def test_deterministic(self):
        assert hash64("x", seed=3) == hash64("x", seed=3)

    def test_seed_changes_output(self):
        assert hash64("x", seed=1) != hash64("x", seed=2)

    def test_output_fits_64_bits(self):
        for value in (0, 1, "abc", (1, 2, 3)):
            assert 0 <= hash64(value) < 1 << 64

    def test_avalanche_on_adjacent_ints(self):
        # Adjacent inputs should differ in roughly half the bits.
        diff = hash64(1000) ^ hash64(1001)
        assert 16 <= bin(diff).count("1") <= 48


class TestHashRange:
    def test_in_range(self):
        for i in range(200):
            assert 0 <= hash_range(i, 7) < 7

    def test_range_one_always_zero(self):
        assert hash_range("anything", 1) == 0

    def test_invalid_range_raises(self):
        with pytest.raises(ValueError):
            hash_range(1, 0)

    def test_roughly_uniform(self):
        n = 10
        counts = [0] * n
        for i in range(5000):
            counts[hash_range(i, n)] += 1
        assert min(counts) > 300  # expectation 500 per bucket
        assert max(counts) < 700


class TestHashFamily:
    def test_returns_requested_count(self):
        fns = hash_family(5, 100)
        assert len(fns) == 5

    def test_functions_are_independent(self):
        f1, f2 = hash_family(2, 1 << 30)
        collisions = sum(1 for i in range(1000) if f1(i) == f2(i))
        assert collisions <= 2

    def test_zero_count_raises(self):
        with pytest.raises(ValueError):
            hash_family(0, 10)

    def test_functions_stay_in_range(self):
        for fn in hash_family(3, 13):
            assert all(0 <= fn(i) < 13 for i in range(100))


class TestFingerprint:
    def test_width_respected(self):
        for bits in (1, 8, 16, 32, 64):
            assert 0 <= fingerprint("v", bits) < 1 << bits

    def test_invalid_width_raises(self):
        with pytest.raises(ValueError):
            fingerprint("v", 0)
        with pytest.raises(ValueError):
            fingerprint("v", 65)

    def test_deterministic(self):
        assert fingerprint((1, "a"), 32, seed=9) == fingerprint((1, "a"), 32, seed=9)

    def test_collision_rate_matches_width(self):
        # 16-bit fingerprints over 500 values: expected ~1.9 colliding pairs.
        values = {fingerprint(i, 16) for i in range(500)}
        assert len(values) > 480


class TestCombine:
    def test_order_sensitive(self):
        assert combine([1, 2, 3]) != combine([3, 2, 1])

    def test_deterministic(self):
        assert combine(["a", "b"], seed=4) == combine(["a", "b"], seed=4)

    def test_empty_is_seed_dependent(self):
        assert combine([], seed=1) != combine([], seed=2)
