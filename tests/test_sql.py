"""Tests for the SQL front-end (repro.engine.sql)."""

from __future__ import annotations

import pytest

from repro.engine.expressions import Between, Compare, Like
from repro.engine.plan import (
    CountOp,
    DistinctOp,
    FilterOp,
    GroupByOp,
    HavingOp,
    JoinOp,
    SkylineOp,
    TopNOp,
)
from repro.engine.reference import run_reference
from repro.engine.sql import parse, parse_predicate
from repro.errors import PlanError


class TestSelectForms:
    def test_count(self):
        q = parse("SELECT COUNT(*) FROM Rankings WHERE avgDuration < 10")
        assert isinstance(q.operator, CountOp)
        assert q.operator.table == "Rankings"

    def test_count_requires_where(self):
        with pytest.raises(PlanError):
            parse("SELECT COUNT(*) FROM Rankings")

    def test_distinct_single(self):
        q = parse("SELECT DISTINCT seller FROM Products")
        assert isinstance(q.operator, DistinctOp)
        assert list(q.operator.columns) == ["seller"]

    def test_distinct_multi(self):
        q = parse("SELECT DISTINCT seller, price FROM Products")
        assert list(q.operator.columns) == ["seller", "price"]

    def test_distinct_with_where(self):
        q = parse("SELECT DISTINCT seller FROM Products WHERE price > 4")
        assert q.where is not None

    def test_topn(self):
        q = parse("SELECT TOP 250 name FROM UserVisits ORDER BY adRevenue")
        assert isinstance(q.operator, TopNOp)
        assert q.operator.n == 250
        assert q.operator.order_by == "adRevenue"

    def test_topn_star_and_desc(self):
        q = parse("SELECT TOP 3 * FROM Ratings ORDER BY taste DESC")
        assert q.operator.n == 3

    def test_groupby_max(self):
        q = parse(
            "SELECT userAgent, MAX(adRevenue) FROM UserVisits GROUP BY userAgent"
        )
        assert isinstance(q.operator, GroupByOp)
        assert q.operator.aggregate == "max"
        assert q.operator.value == "adRevenue"
        assert q.operator.key == "userAgent"

    def test_groupby_min(self):
        q = parse("SELECT k, MIN(v) FROM T GROUP BY k")
        assert q.operator.aggregate == "min"

    def test_groupby_sum_rejected(self):
        with pytest.raises(PlanError, match="HAVING"):
            parse("SELECT k, SUM(v) FROM T GROUP BY k")

    def test_having_sum(self):
        q = parse(
            "SELECT seller FROM Products GROUP BY seller HAVING SUM(price) > 5"
        )
        assert isinstance(q.operator, HavingOp)
        assert q.operator.threshold == 5.0
        assert q.operator.aggregate == "sum"

    def test_having_less_than_rejected(self):
        with pytest.raises(PlanError):
            parse("SELECT k FROM T GROUP BY k HAVING SUM(v) < 5")

    def test_join(self):
        q = parse(
            "SELECT * FROM Products JOIN Ratings ON Products.name = Ratings.name"
        )
        assert isinstance(q.operator, JoinOp)
        assert q.operator.left_on == "name"
        assert q.operator.right_table == "Ratings"

    def test_join_reversed_condition_order(self):
        q = parse("SELECT * FROM A JOIN B ON B.y = A.x")
        assert q.operator.left_on == "x"
        assert q.operator.right_on == "y"

    def test_join_wrong_tables_rejected(self):
        with pytest.raises(PlanError):
            parse("SELECT * FROM A JOIN B ON C.x = D.y")

    def test_skyline(self):
        q = parse("SELECT name FROM Ratings SKYLINE OF taste, texture")
        assert isinstance(q.operator, SkylineOp)
        assert list(q.operator.columns) == ["taste", "texture"]

    def test_filter(self):
        q = parse("SELECT * FROM Ratings WHERE taste > 5")
        assert isinstance(q.operator, FilterOp)

    def test_bare_select_star_rejected(self):
        with pytest.raises(PlanError):
            parse("SELECT * FROM Ratings")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(PlanError):
            parse("SELECT DISTINCT a FROM t EXTRA")

    def test_keywords_case_insensitive(self):
        q = parse("select distinct seller from Products")
        assert isinstance(q.operator, DistinctOp)


class TestPredicateGrammar:
    def test_simple_comparison(self):
        expr = parse_predicate("taste > 5")
        assert isinstance(expr, Compare)
        assert expr.op == ">"

    def test_all_operators(self):
        for sql_op, norm in [
            (">", ">"), (">=", ">="), ("<", "<"), ("<=", "<="),
            ("=", "=="), ("==", "=="), ("!=", "!="), ("<>", "!="),
        ]:
            expr = parse_predicate(f"x {sql_op} 1")
            assert expr.op == norm

    def test_like(self):
        expr = parse_predicate("name LIKE 'e%s'")
        assert isinstance(expr, Like)
        assert expr.pattern == "e%s"

    def test_like_requires_string(self):
        with pytest.raises(PlanError):
            parse_predicate("name LIKE 5")

    def test_between(self):
        expr = parse_predicate("x BETWEEN 1 AND 10")
        assert isinstance(expr, Between)
        assert (expr.lo, expr.hi) == (1, 10)

    def test_paper_example_structure(self):
        expr = parse_predicate("taste > 5 OR (texture > 4 AND name LIKE 'e%s')")
        text = repr(expr)
        assert "OR" in text and "AND" in text and "LIKE" in text

    def test_precedence_and_binds_tighter(self):
        # a OR b AND c == a OR (b AND c)
        expr = parse_predicate("a > 1 OR b > 2 AND c > 3")
        assert repr(expr).startswith("((a > 1) OR")

    def test_not(self):
        expr = parse_predicate("NOT taste > 5")
        assert repr(expr).startswith("(NOT")

    def test_float_and_string_literals(self):
        assert parse_predicate("x > 1.5").literal == 1.5
        assert parse_predicate("x = 'abc'").literal == "abc"

    def test_negative_number(self):
        assert parse_predicate("x > -3").literal == -3

    def test_bad_tokens_rejected(self):
        with pytest.raises(PlanError):
            parse_predicate("x > @")

    def test_missing_comparison_rejected(self):
        with pytest.raises(PlanError):
            parse_predicate("x")


class TestParsedQueriesExecute:
    """Parsed paper queries run end-to-end and match the reference."""

    @pytest.fixture
    def tables(self, products_table, ratings_table):
        return {"Products": products_table, "Ratings": ratings_table}

    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT DISTINCT seller FROM Products",
            "SELECT TOP 3 name FROM Ratings ORDER BY taste",
            "SELECT seller, MAX(price) FROM Products GROUP BY seller",
            "SELECT seller FROM Products GROUP BY seller HAVING SUM(price) > 5",
            "SELECT * FROM Products JOIN Ratings ON Products.name = Ratings.name",
            "SELECT name FROM Ratings SKYLINE OF taste, texture",
            "SELECT COUNT(*) FROM Ratings WHERE taste > 5 OR texture > 4",
        ],
    )
    def test_run_verified(self, sql, tables):
        from repro.engine.cluster import Cluster

        Cluster(workers=2).run_verified(parse(sql), tables)

    def test_paper_where_example_against_mask(self, tables):
        query = parse(
            "SELECT * FROM Ratings WHERE taste > 5 OR "
            "(texture > 4 AND name LIKE 'e%s')"
        )
        result = run_reference(query, tables)
        # Rows: Pizza(7,5) Cheetos(8,6) Jello(9,4) pass on taste alone.
        assert result == {0, 1, 2}


class TestOrderDirection:
    def test_desc_default(self):
        q = parse("SELECT TOP 5 x FROM T ORDER BY x")
        assert q.operator.descending is True

    def test_explicit_desc(self):
        q = parse("SELECT TOP 5 x FROM T ORDER BY x DESC")
        assert q.operator.descending is True

    def test_asc(self):
        q = parse("SELECT TOP 5 x FROM T ORDER BY x ASC")
        assert q.operator.descending is False

    def test_asc_executes_verified(self, products_table, ratings_table):
        from repro.engine.cluster import Cluster

        tables = {"Products": products_table, "Ratings": ratings_table}
        q = parse("SELECT TOP 2 taste FROM Ratings ORDER BY taste ASC")
        result = Cluster(workers=2).run_verified(q, tables)
        assert result.output == [3, 5]  # the two worst-tasting items

    def test_describe_includes_direction(self):
        assert "ASC" in parse("SELECT TOP 5 x FROM T ORDER BY x ASC").describe()


class TestHavingCount:
    def test_having_count_parses(self):
        q = parse("SELECT k FROM T GROUP BY k HAVING COUNT(v) > 3")
        assert isinstance(q.operator, HavingOp)
        assert q.operator.aggregate == "count"

    def test_having_count_executes(self, products_table, ratings_table):
        from repro.engine.cluster import Cluster

        tables = {"Products": products_table, "Ratings": ratings_table}
        q = parse(
            "SELECT seller FROM Products GROUP BY seller HAVING COUNT(price) > 1"
        )
        result = Cluster(workers=2).run_verified(q, tables)
        assert result.output == {"McCheetah"}


class TestCacheKey:
    """Query.cache_key(): the serving/compile-memo canonical key."""

    def test_invariant_to_whitespace_and_case(self):
        variants = (
            "SELECT COUNT(*) FROM Products WHERE price > 4",
            "select count(*) from Products where price > 4",
            "SELECT   COUNT(*)\tFROM Products   WHERE price > 4",
            "Select Count(*) From Products Where price > 4",
        )
        keys = {parse(sql).cache_key() for sql in variants}
        assert len(keys) == 1

    def test_invariance_holds_across_operator_kinds(self):
        pairs = (
            ("SELECT DISTINCT seller FROM Products",
             "select  distinct seller from Products"),
            ("SELECT TOP 5 price FROM Products ORDER BY price DESC",
             "select top 5 price from Products order by price desc"),
            ("SELECT seller, MAX(price) FROM Products GROUP BY seller",
             "select seller, max(price) from Products  group by seller"),
            ("SELECT seller FROM Products GROUP BY seller HAVING COUNT(price) > 1",
             "select seller from Products group by seller having count(price) > 1"),
        )
        for canonical, variant in pairs:
            assert parse(canonical).cache_key() == parse(variant).cache_key()

    def test_distinct_plans_get_distinct_keys(self):
        sqls = (
            "SELECT COUNT(*) FROM Products WHERE price > 4",
            "SELECT COUNT(*) FROM Products WHERE price > 5",
            "SELECT COUNT(*) FROM Ratings WHERE taste > 4",
            "SELECT DISTINCT seller FROM Products",
            "SELECT DISTINCT seller FROM Products WHERE price > 4",
        )
        keys = [parse(sql).cache_key() for sql in sqls]
        assert len(set(keys)) == len(keys)

    def test_key_is_a_stable_string(self):
        key = parse("SELECT DISTINCT seller FROM Products").cache_key()
        assert isinstance(key, str)
        assert "distinctop" in key and "Products" in key
        # Stable across repeated parses of the same text.
        assert key == parse("SELECT DISTINCT seller FROM Products").cache_key()


class TestErrorPositions:
    """Malformed SQL raises PlanError with a position — never a crash."""

    def test_unterminated_string_literal(self):
        with pytest.raises(PlanError, match="position"):
            parse("SELECT COUNT(*) FROM T WHERE name = 'oops")

    def test_unknown_operator_token(self):
        with pytest.raises(PlanError, match="position"):
            parse("SELECT COUNT(*) FROM T WHERE x @ 5")

    def test_trailing_garbage(self):
        with pytest.raises(PlanError, match="position"):
            parse("SELECT DISTINCT seller FROM Products EXTRA tokens here")

    def test_position_points_into_the_text(self):
        sql = "SELECT COUNT(*) FROM T WHERE x @ 5"
        with pytest.raises(PlanError) as caught:
            parse(sql)
        message = str(caught.value)
        position = int(message.split("position ")[1].split(":")[0].split(" ")[0])
        assert sql[position] == "@"
