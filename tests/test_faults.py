"""Unit tests for the fault-injection subsystem (repro.faults et al.).

Covers the schedule layer (FaultPlan / scenarios), the injector's stream
and transport hooks, frame checksums (corrupted packets are detected and
never decoded), the per-pruner reboot/corruption hooks, pipeline stage
exhaustion (fail-open), and the timed timeout-based transport.
"""

from __future__ import annotations

import random

import pytest

from repro.core.base import PruneDecision
from repro.core.distinct import DistinctPruner
from repro.core.filtering import Atom, FilterPruner, Var
from repro.core.groupby import GroupByPruner
from repro.core.having import HavingPruner
from repro.core.join import JoinPruner
from repro.core.skyline import SkylinePruner
from repro.core.summary import is_reboot_safe
from repro.core.topn import TopNDeterministicPruner, TopNRandomizedPruner
from repro.errors import ChecksumError, ConfigurationError, ProtocolError
from repro.faults import (
    FAULT_KINDS,
    ChaosLink,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    SCENARIOS,
    scenario,
)
from repro.net.packets import CheetahPacket
from repro.net.reliability import MultiFlowTransfer, ReliableTransfer
from repro.net.services import CMaster
from repro.net.timed import TimedReliableTransfer


def packets_for(entries, fid=0):
    """One single-value packet per entry (no FIN; transfer-level tests)."""
    return [
        CheetahPacket(fid=fid, seq=i, values=(v,)) for i, v in enumerate(entries)
    ]


class TestFaultPlan:
    def test_events_sort_and_validate(self):
        plan = FaultPlan(
            [FaultEvent(at=9, kind="drop"), FaultEvent(at=2, kind="reboot")]
        )
        assert [e.at for e in plan] == [2, 9]
        with pytest.raises(ConfigurationError):
            FaultEvent(at=1, kind="meteor")
        with pytest.raises(ConfigurationError):
            FaultEvent(at=-1, kind="drop")

    def test_random_is_deterministic_per_seed(self):
        a = FaultPlan.random(7, 1000, count=10)
        b = FaultPlan.random(7, 1000, count=10)
        c = FaultPlan.random(8, 1000, count=10)
        assert a.events == b.events
        assert a.events != c.events

    def test_random_respects_window_and_count(self):
        plan = FaultPlan.random(3, 1000, count=12, window=(0.6, 0.95))
        assert len(plan) == 12
        assert all(600 <= e.at < 950 for e in plan)

    def test_random_rejects_bad_inputs(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.random(0, 0)
        with pytest.raises(ConfigurationError):
            FaultPlan.random(0, 100, kinds=("drop", "meteor"))

    def test_single_and_events_of(self):
        plan = FaultPlan.single("reboot", at=5)
        assert len(plan) == 1
        assert plan.events_of("reboot")[0].at == 5
        assert plan.events_of("drop") == []

    def test_scenarios_all_build(self):
        for name, spec in SCENARIOS.items():
            plan = spec.build_plan(seed=1, length=500)
            assert len(plan) >= 1, name
            assert all(e.kind in spec.kinds for e in plan)

    def test_unknown_scenario_raises(self):
        with pytest.raises(ConfigurationError):
            scenario("does-not-exist")


class TestFrameChecksum:
    def test_round_trip(self):
        packet = CheetahPacket(fid=3, seq=11, values=(42, -7))
        assert CheetahPacket.decode_frame(packet.encode_frame()) == packet

    def test_every_single_bit_flip_is_detected(self):
        frame = CheetahPacket(fid=1, seq=2, values=(1234,)).encode_frame()
        for bit in range(len(frame) * 8):
            corrupted = bytearray(frame)
            corrupted[bit >> 3] ^= 1 << (bit & 7)
            with pytest.raises(ChecksumError):
                CheetahPacket.decode_frame(bytes(corrupted))

    def test_truncated_frame_is_detected(self):
        frame = CheetahPacket(fid=1, seq=2, values=(5,)).encode_frame()
        with pytest.raises(ChecksumError):
            CheetahPacket.decode_frame(frame[:-1])

    def test_cmaster_counts_and_discards_corrupt_frames(self):
        master = CMaster(expected_fids=[0])
        good = CheetahPacket(fid=0, seq=0, values=(9,)).encode_frame()
        bad = bytearray(good)
        bad[0] ^= 0x10
        assert master.receive_frame(bytes(bad)) is False
        assert master.checksum_drops == 1
        assert master.rows(0) == []  # the corrupt frame never decoded
        assert master.receive_frame(good) is True
        assert len(master.rows(0)) == 1


class TestInjectorStreamSide:
    def test_drop_and_corrupt_arrive_late(self):
        plan = FaultPlan(
            [FaultEvent(at=1, kind="drop"), FaultEvent(at=3, kind="corrupt")]
        )
        injector = FaultInjector(plan)
        out = injector.perturb_partition(list("abcde"), 0, 0, "stream")
        assert sorted(out) == list("abcde")  # nothing lost, only delayed
        assert out != list("abcde")
        assert injector.injected == 2

    def test_duplicate_and_reorder(self):
        injector = FaultInjector(FaultPlan([FaultEvent(at=2, kind="duplicate")]))
        out = injector.perturb_partition(list("abcd"), 0, 0, "stream")
        assert out == ["a", "b", "c", "c", "d"]
        injector = FaultInjector(FaultPlan([FaultEvent(at=0, kind="reorder")]))
        out = injector.perturb_partition(list("abcd"), 0, 0, "stream")
        assert out == ["b", "a", "c", "d"]

    def test_crash_replays_partition_prefix(self):
        injector = FaultInjector(FaultPlan([FaultEvent(at=2, kind="crash")]))
        out = injector.perturb_partition(list("abcd"), 0, 0, "stream")
        assert out == ["a", "b", "a", "b", "c", "d"]

    def test_events_outside_span_do_not_fire(self):
        plan = FaultPlan([FaultEvent(at=50, kind="drop")])
        injector = FaultInjector(plan)
        out = injector.perturb_partition(list("abc"), 0, 0, "stream")
        assert out == list("abc")
        assert injector.injected == 0

    def test_advance_pops_switch_events_in_order(self):
        plan = FaultPlan(
            [FaultEvent(at=0, kind="reboot"), FaultEvent(at=2, kind="bitflip")]
        )
        injector = FaultInjector(plan)
        assert [e.kind for e in injector.advance(1)] == ["reboot"]
        assert injector.advance(1) == []
        assert [e.kind for e in injector.advance(1)] == ["bitflip"]
        assert injector.cursor == 3

    def test_summary_shape(self):
        injector = FaultInjector(FaultPlan([FaultEvent(at=0, kind="drop")], seed=4))
        injector.perturb_partition([1, 2], 0, 0, "stream")
        injector.record_degradation("join", "rebuild", 0, "test")
        summary = injector.summary()
        assert summary["seed"] == 4
        assert summary["planned"] == 1
        assert summary["injected"] == 1
        assert summary["by_kind"] == {"drop": 1}
        assert summary["degradations"][0]["action"] == "rebuild"


class TestChaosLink:
    def test_scheduled_drops_fire_exactly(self):
        link = ChaosLink(0.0, random.Random(0), drop_at={1, 3})
        outcomes = [link.deliver() for _ in range(5)]
        assert outcomes == [True, False, True, False, True]
        assert link.scheduled_drops == 2

    def test_blackout_window(self):
        link = ChaosLink(0.0, random.Random(0), blackout=(2, 4))
        outcomes = [link.deliver() for _ in range(6)]
        assert outcomes == [True, True, False, False, True, True]

    def test_plugs_into_reliable_transfer(self):
        transfer = ReliableTransfer(
            DistinctPruner(rows=16, cols=2),
            link_factory=lambda rng: ChaosLink(0.0, rng, drop_at={0, 5}),
        )
        entries = [1, 2, 3, 1, 2, 4]
        delivered = transfer.run(packets_for(entries))
        assert set(delivered) == {1, 2, 3, 4}
        assert transfer.stats.retransmissions > 0


class TestPrunerFaultHooks:
    def test_reboot_clears_state_but_keeps_metrics(self):
        pruner = DistinctPruner(rows=16, cols=2)
        assert pruner.process(7) is PruneDecision.FORWARD
        assert pruner.process(7) is PruneDecision.PRUNE
        pruner.reboot()
        # State gone: the duplicate forwards again (superset-safe)...
        assert pruner.process(7) is PruneDecision.FORWARD
        # ...but decision counts from before the reboot survive.
        assert pruner.stats.processed == 3
        reboots = pruner.metrics.counter(
            "pruner_reboots_total",
            "Mid-query switch reboots this pruner absorbed.",
            pruner="DistinctPruner",
        )
        assert reboots.value == 1

    def test_reset_remains_the_full_wipe(self):
        pruner = DistinctPruner(rows=16, cols=2)
        pruner.process(7)
        pruner.reset()
        assert pruner.stats.processed == 0

    def test_corrupt_state_hits_live_state(self):
        cases = [
            (DistinctPruner(rows=16, cols=2), [3.0, 4.0]),
            (GroupByPruner(rows=16, cols=4), [("k", 5.0), ("j", 6.0)]),
            (TopNRandomizedPruner(n=4, rows=64, delta=1e-3), [3.0, 4.0]),
            (HavingPruner(threshold=10.0, width=64, depth=2), [("k", 5.0)]),
            (SkylinePruner(dims=2, points=4), [(1.0, 2.0), (2.0, 1.0)]),
        ]
        for pruner, entries in cases:
            for entry in entries:
                pruner.process(entry)
            description = pruner.corrupt_state(random.Random(1))
            assert description is not None, type(pruner).__name__
            hits = pruner.metrics.counter(
                "pruner_state_corruptions_total",
                "Injected bit corruptions that hit live pruner state.",
                pruner=type(pruner).__name__,
            )
            assert hits.value == 1, type(pruner).__name__

    def test_topn_deterministic_corruption_raises_a_threshold(self):
        pruner = TopNDeterministicPruner(n=2, thresholds=2)
        for value in (5.0, 6.0, 7.0, 8.0, 9.0, 10.0):
            pruner.process(value)
        assert pruner.corrupt_state(random.Random(0)) is not None

    def test_stateless_filter_has_nothing_to_corrupt(self):
        formula = Var(Atom(name="x>3", evaluate=lambda e: e > 3))
        pruner = FilterPruner(formula)
        assert pruner.corrupt_state(random.Random(0)) is None

    def test_join_corruption_flips_a_bloom_bit(self):
        pruner = JoinPruner("L", "R", memory_bits=1 << 12)
        pruner.build([1, 2], [2, 3])
        description = pruner.corrupt_state(random.Random(2))
        assert description is not None and "bloom" in description

    def test_is_reboot_safe_matches_table4(self):
        assert is_reboot_safe("filter")
        assert is_reboot_safe("distinct")
        assert is_reboot_safe("topn")
        assert is_reboot_safe("groupby")
        assert not is_reboot_safe("join")
        assert not is_reboot_safe("having")
        assert not is_reboot_safe("skyline")
        with pytest.raises(KeyError):
            is_reboot_safe("teleport")


class TestPipelineExhaustion:
    def _programmed_pipeline(self):
        from repro.switch.pipeline import Pipeline

        pipeline = Pipeline()
        stage = pipeline.stage(0)
        stage.alloc_register("seen", size=4)

        def program(st, phv):
            if st.reg_read_modify_write("seen", 0, lambda old: old + 1) > 0:
                phv.prune = True

        pipeline.install(0, program)
        return pipeline

    def test_exhausted_stage_fails_open(self):
        pipeline = self._programmed_pipeline()
        phv = pipeline.new_phv()
        assert pipeline.process(phv) is True  # first packet forwards
        assert pipeline.process(pipeline.new_phv()) is False  # now prunes
        pipeline.exhaust_stage(0)
        assert pipeline.exhausted_stages == [0]
        # The stage's program no longer runs: everything forwards.
        for _ in range(3):
            assert pipeline.process(pipeline.new_phv()) is True

    def test_exhaust_bounds_checked_and_counted(self):
        from repro.errors import ResourceError

        pipeline = self._programmed_pipeline()
        with pytest.raises(ResourceError):
            pipeline.exhaust_stage(99)
        pipeline.exhaust_stage(0)
        pipeline.exhaust_stage(0)  # idempotent
        counter = pipeline.metrics.counter(
            "pipeline_stages_exhausted_total",
            "Stages disabled by fault injection (fail-open).",
        )
        assert counter.value == 1

    def test_corrupt_register_flips_programmed_state(self):
        pipeline = self._programmed_pipeline()
        description = pipeline.corrupt_register(random.Random(0))
        assert description is not None and "stage 0" in description

    def test_corrupt_register_without_state_returns_none(self):
        from repro.switch.pipeline import Pipeline

        assert Pipeline().corrupt_register(random.Random(0)) is None


class TestTransferWindowValidation:
    def test_reliable_transfer_rejects_bad_window(self):
        with pytest.raises(ProtocolError):
            ReliableTransfer(DistinctPruner(rows=8, cols=2), window=0)

    def test_multiflow_transfer_rejects_bad_window(self):
        # The historical gap: MultiFlowTransfer skipped this validation.
        with pytest.raises(ProtocolError):
            MultiFlowTransfer(DistinctPruner(rows=8, cols=2), window=0)
        with pytest.raises(ProtocolError):
            MultiFlowTransfer(DistinctPruner(rows=8, cols=2), window=-3)

    def test_timed_transfer_rejects_bad_params(self):
        pruner = DistinctPruner(rows=8, cols=2)
        with pytest.raises(ProtocolError):
            TimedReliableTransfer(pruner, window=0)
        with pytest.raises(ProtocolError):
            TimedReliableTransfer(pruner, link_delay=0.0)
        with pytest.raises(ProtocolError):
            TimedReliableTransfer(pruner, rto_initial=1.0, link_delay=1.0)
        with pytest.raises(ProtocolError):
            TimedReliableTransfer(pruner, backoff=0.5)
        with pytest.raises(ProtocolError):
            TimedReliableTransfer(pruner, max_attempts=0)


class TestTimedTransfer:
    def test_lossless_run_has_no_retransmissions(self):
        entries = list(range(40))
        transfer = TimedReliableTransfer(DistinctPruner(rows=64, cols=2))
        delivered = transfer.run(packets_for(entries))
        assert set(delivered) == set(entries)
        assert transfer.stats.retransmissions == 0
        assert transfer.stats.timeouts == 0
        assert transfer.sim_time > 0
        assert transfer.goodput() > 0

    def test_converges_under_heavy_loss(self):
        rng = random.Random(9)
        entries = [rng.randrange(30) for _ in range(120)]
        transfer = TimedReliableTransfer(
            DistinctPruner(rows=16, cols=2), loss=0.3, seed=5
        )
        delivered = transfer.run(packets_for(entries))
        assert set(delivered) == set(entries)
        assert transfer.stats.retransmissions > 0
        assert transfer.stats.timeouts > 0

    def test_deterministic_for_fixed_seed(self):
        entries = list(range(60))

        def run():
            transfer = TimedReliableTransfer(
                DistinctPruner(rows=32, cols=2), loss=0.2, seed=3
            )
            transfer.run(packets_for(entries))
            return (
                transfer.sim_time,
                transfer.stats.transmissions,
                transfer.stats.retransmissions,
            )

        assert run() == run()

    def test_backoff_ladder_is_capped(self):
        transfer = TimedReliableTransfer(
            DistinctPruner(rows=8, cols=2),
            rto_initial=4.0,
            rto_max=16.0,
            backoff=2.0,
        )
        assert transfer._rto(1) == 4.0
        assert transfer._rto(2) == 8.0
        assert transfer._rto(3) == 16.0
        assert transfer._rto(10) == 16.0

    def test_injected_corruption_is_checksum_detected(self):
        plan = FaultPlan(
            [FaultEvent(at=2, kind="corrupt"), FaultEvent(at=5, kind="corrupt")]
        )
        transfer = TimedReliableTransfer(
            DistinctPruner(rows=32, cols=2), injector=FaultInjector(plan)
        )
        entries = list(range(20))
        delivered = transfer.run(packets_for(entries))
        assert set(delivered) == set(entries)
        assert transfer.stats.checksum_drops == 2
        assert transfer.stats.retransmissions >= 2

    def test_injected_drop_duplicate_reorder_recover(self):
        plan = FaultPlan(
            [
                FaultEvent(at=1, kind="drop"),
                FaultEvent(at=4, kind="duplicate"),
                FaultEvent(at=7, kind="reorder"),
            ]
        )
        transfer = TimedReliableTransfer(
            DistinctPruner(rows=32, cols=2), injector=FaultInjector(plan)
        )
        entries = list(range(15))
        delivered = transfer.run(packets_for(entries))
        assert set(delivered) == set(entries)

    def test_downlink_targeted_fault(self):
        plan = FaultPlan([FaultEvent(at=0, kind="drop", target="downlink")])
        transfer = TimedReliableTransfer(
            DistinctPruner(rows=32, cols=2), injector=FaultInjector(plan)
        )
        delivered = transfer.run(packets_for([1, 2, 3]))
        assert set(delivered) == {1, 2, 3}
        assert transfer.downlink.dropped == 1

    def test_dead_link_gives_up_with_protocol_error(self):
        transfer = TimedReliableTransfer(
            DistinctPruner(rows=8, cols=2),
            link_factory=lambda rng: ChaosLink(0.0, rng, blackout=(0, 10**9)),
            max_attempts=3,
        )
        with pytest.raises(ProtocolError):
            transfer.run(packets_for([1, 2]))
