"""End-to-end telemetry tests: pruners, cluster runs, reports, and CLI.

The contract under test: every pruner reports into a per-instance
registry; ``Pruner.reset`` is final (subclasses extend ``_reset_state``)
and zeroes counters in place; cluster runs at any batch size produce the
*same counters* as the scalar run; ``run_packed`` keeps per-query
registries isolated; and the ``--metrics-out``/``metrics`` CLI round
trip exposes phase wall-times, decision counts, and health gauges.
"""

from __future__ import annotations

import json

import pytest

from repro.core.base import PassthroughPruner, PruneDecision, Pruner
from repro.core.distinct import DistinctPruner, FingerprintDistinctPruner
from repro.core.filtering import FilterPruner
from repro.core.groupby import GroupByPruner
from repro.core.having import HavingPruner
from repro.core.join import JoinPruner
from repro.core.skyline import SkylinePruner
from repro.core.topn import TopNDeterministicPruner, TopNRandomizedPruner
from repro.cli import main
from repro.engine.cluster import Cluster, ClusterConfig
from repro.engine.expressions import col
from repro.engine.plan import CountOp, DistinctOp, GroupByOp, Query
from repro.switch.pipeline import Pipeline, PipelineStats
from repro.workloads import bigdata


# ---------------------------------------------------------------------------
# reset() is final; _reset_state() is the extension hook
# ---------------------------------------------------------------------------


def test_pruner_subclass_cannot_override_reset():
    with pytest.raises(TypeError, match="_reset_state"):

        class Rogue(Pruner):  # noqa: F841 - class body is the assertion
            def reset(self):
                pass


def test_pruner_subclass_may_override_reset_state():
    class Fine(Pruner):
        """Subclass using the sanctioned hook."""

        def __init__(self):
            super().__init__()
            self.cleared = 0

        def process(self, entry):
            """Forward everything."""
            decision = PruneDecision.FORWARD
            self.stats.record(decision)
            return decision

        def footprint(self):
            """No hardware resources."""
            from repro.switch.resources import ResourceFootprint

            return ResourceFootprint(label="FINE")

        def _reset_state(self):
            """Count hook invocations."""
            self.cleared += 1

    pruner = Fine()
    pruner.process(1)
    pruner.reset()
    assert pruner.cleared == 1
    assert pruner.stats.processed == 0


def _stream_for(pruner):
    """A small stream matching the pruner's entry shape."""
    if isinstance(pruner, (FilterPruner,)):
        return [(float(i), i % 7) for i in range(50)]
    if isinstance(pruner, (GroupByPruner, HavingPruner)):
        return [(i % 5, float(i)) for i in range(50)]
    if isinstance(pruner, SkylinePruner):
        return [(float(i % 9), float((i * 3) % 7)) for i in range(50)]
    if isinstance(pruner, JoinPruner):
        return [("L", i % 20) for i in range(50)]
    if isinstance(pruner, (TopNDeterministicPruner, TopNRandomizedPruner)):
        return [float(i * 37 % 101) for i in range(50)]
    return [i % 13 for i in range(50)]


def _all_pruners():
    """One configured instance of every core pruner."""
    formula = ((col("x") > 10.0) & (col("y") <= 5)).to_formula(["x", "y"])
    join = JoinPruner("L", "R", memory_bits=1 << 16)
    join.build(list(range(10)), list(range(5, 15)))
    return [
        PassthroughPruner(),
        DistinctPruner(rows=64, cols=2),
        FingerprintDistinctPruner(rows=64, cols=2, fingerprint_bits=16),
        TopNDeterministicPruner(n=10, thresholds=4),
        TopNRandomizedPruner(n=10, rows=64, delta=1e-2, seed=1),
        GroupByPruner(rows=64, cols=4),
        FilterPruner(formula),
        HavingPruner(threshold=25.0, width=64, depth=2),
        SkylinePruner(dims=2, points=5, score="sum"),
        join,
    ]


@pytest.mark.parametrize(
    "pruner", _all_pruners(), ids=lambda p: type(p).__name__
)
def test_reset_zeroes_stats_and_registry(pruner):
    for entry in _stream_for(pruner):
        pruner.process(entry)
    pruner.observe_health()
    assert pruner.stats.processed == 50
    assert any(pruner.metrics.counter_values().values())
    pruner.reset()
    assert pruner.stats.processed == 0
    assert pruner.stats.pruned == 0
    assert pruner.stats.forwarded == 0
    assert not any(pruner.metrics.counter_values().values())
    assert pruner.metrics.spans == []


def test_reset_restores_initial_decisions():
    """After reset, a deterministic pruner behaves like a fresh instance."""
    stream = [i % 13 for i in range(80)]
    fresh = DistinctPruner(rows=64, cols=2)
    expected = [fresh.process(e) for e in stream]
    pruner = DistinctPruner(rows=64, cols=2)
    for entry in stream:
        pruner.process(entry)
    pruner.reset()
    assert [pruner.process(e) for e in stream] == expected


# ---------------------------------------------------------------------------
# cluster runs: scalar vs batch counter equality
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def tables():
    scale = bigdata.BigDataScale(
        rankings_rows=1500, uservisits_rows=3000, distinct_urls=600
    )
    return bigdata.tables(scale, seed=5)


def _counters(result):
    assert result.metrics is not None
    return result.metrics.counter_values()


QUERIES = {
    "filter-count": bigdata.query1_filter_count,
    "distinct": lambda: Query(DistinctOp("UserVisits", ("userAgent",))),
    "groupby": lambda: Query(
        GroupByOp("UserVisits", "userAgent", "adRevenue", "max")
    ),
}


def _without_fused(counters):
    """Drop the fused dataplane's own telemetry (``fused_*``).

    Batched runs execute through the fused kernel by default, which adds
    batch/digest-share counters the scalar path has no analog for; every
    counter both paths share must still match exactly.
    """
    return {k: v for k, v in counters.items() if not k.startswith("fused_")}


@pytest.mark.parametrize("name", sorted(QUERIES))
@pytest.mark.parametrize("batch_size", [1, 7, 64])
def test_batch_run_counters_equal_scalar(tables, name, batch_size):
    query = QUERIES[name]()
    scalar = Cluster(workers=3).run(query, tables)
    batch = Cluster(workers=3, config=ClusterConfig(batch_size=batch_size)).run(
        query, tables
    )
    assert batch.output == scalar.output
    assert _without_fused(_counters(batch)) == _counters(scalar)


def test_multi_phase_counters_equal_scalar(tables):
    query = bigdata.query7_having(threshold=4000.0)
    scalar = Cluster(workers=3).run(query, tables)
    batch = Cluster(workers=3, config=ClusterConfig(batch_size=19)).run(
        query, tables
    )
    assert batch.output == scalar.output
    assert _counters(batch) == _counters(scalar)


# ---------------------------------------------------------------------------
# run results carry a usable registry
# ---------------------------------------------------------------------------


def test_run_result_report_structure(tables):
    result = Cluster(workers=3).run(bigdata.query1_filter_count(), tables)
    report = result.report()
    assert report["query"] == result.query
    assert report["op_kind"] == "filter"
    assert report["workers"] == 3
    totals = report["totals"]
    assert totals["streamed"] == totals["forwarded"] + totals["pruned"]
    assert report["phases"], "expected at least one phase"
    for phase in report["phases"]:
        assert phase["seconds"] is not None and phase["seconds"] >= 0.0
    metrics = report["metrics"]
    counters = {entry["name"] for entry in metrics["counters"]}
    assert "pruner_entries_processed_total" in counters
    assert "phase_entries_streamed_total" in counters
    assert "worker_entries_streamed_total" in counters
    assert metrics["gauges"], "expected at least one health gauge"
    assert {span["name"] for span in metrics["spans"]} >= {"stream"}
    json.dumps(report)  # must be JSON-serializable as-is


def test_per_worker_volumes_sum_to_phase(tables):
    result = Cluster(workers=3).run(
        QUERIES["distinct"](), tables
    )
    counters = _counters(result)
    streamed = sum(
        value
        for key, value in counters.items()
        if key.startswith("worker_entries_streamed_total{")
    )
    assert streamed == result.total_streamed


def test_run_packed_keeps_per_query_registries_isolated(tables):
    queries = [
        Query(DistinctOp("UserVisits", ("userAgent",))),
        Query(CountOp("UserVisits", col("duration") > 1800)),
    ]
    packed = Cluster(workers=3).run_packed(queries, tables)
    assert packed.metrics is not None
    assert {s.name for s in packed.metrics.spans} >= {"packed-stream"}
    seen_pruners = []
    for result in packed.results:
        counters = _counters(result)
        pruner_keys = [
            key
            for key in counters
            if key.startswith("pruner_entries_processed_total{")
        ]
        assert len(pruner_keys) == 1, "each result reports exactly its own pruner"
        seen_pruners.append(pruner_keys[0])
        # every packed query sees the full shared stream
        assert counters[pruner_keys[0]] == tables["UserVisits"].num_rows
    assert len(set(seen_pruners)) == len(queries)


def test_registries_are_isolated_between_runs(tables):
    cluster = Cluster(workers=3)
    first = cluster.run(QUERIES["filter-count"](), tables)
    second = cluster.run(QUERIES["filter-count"](), tables)
    assert _counters(first) == _counters(second)  # no cross-run accumulation


# ---------------------------------------------------------------------------
# PipelineStats view
# ---------------------------------------------------------------------------


def test_pipeline_stats_forwarded_is_derived():
    stats = PipelineStats()
    stats.record(False)
    stats.record(True)
    stats.record(False)
    assert (stats.packets, stats.pruned, stats.forwarded) == (3, 1, 2)
    assert stats.pruning_rate == pytest.approx(1 / 3)


def test_pipeline_records_stage_and_phv_metrics():
    pipeline = Pipeline()
    pipeline.install(0, lambda stage, phv: None)
    phv = pipeline.new_phv()
    phv.declare("key", 32)
    pipeline.process(phv)
    values = pipeline.metrics.counter_values()
    assert values["pipeline_packets_total{}"] == 1
    assert values["pipeline_stage_packets_total{stage=0}"] == 1
    assert pipeline.metrics.gauge_values()["phv_used_bits{}"] == 32.0
    pipeline.reset_stats()
    assert pipeline.stats.packets == 0
    assert pipeline.metrics.counter_values()["pipeline_packets_total{}"] == 0


# ---------------------------------------------------------------------------
# CLI round trip
# ---------------------------------------------------------------------------


SQL = "SELECT COUNT(*) FROM UserVisits WHERE duration > 30"


def test_cli_metrics_out_and_pretty_print(tmp_path, capsys):
    out = tmp_path / "run.metrics.json"
    assert main(["query", SQL, "--rows", "2000", "--metrics-out", str(out)]) == 0
    assert f"written to {out}" in capsys.readouterr().out
    report = json.loads(out.read_text())
    assert report["totals"]["streamed"] > 0
    assert report["metrics"]["counters"]

    assert main(["metrics", str(out)]) == 0
    text = capsys.readouterr().out
    assert "query    :" in text
    assert "phase    :" in text and "wall=" in text
    assert "pruner_entries_processed_total" in text
    assert "gauge    :" in text


def test_cli_metrics_prom_export(tmp_path, capsys):
    out = tmp_path / "run.metrics.json"
    assert main(["query", SQL, "--rows", "2000", "--metrics-out", str(out)]) == 0
    capsys.readouterr()
    assert main(["metrics", str(out), "--prom"]) == 0
    prom = capsys.readouterr().out
    assert "# TYPE pruner_entries_processed_total counter" in prom
    assert "span_seconds_bucket" in prom
