"""The fleet subsystem: fabric, tenancy, routing, rolling updates.

The contracts under test are the ones ``repro.fleet`` exists to keep:

* a declared fabric is structurally valid or refuses to construct;
* tables home deterministically onto ToRs, and the router prefers the
  replica that actually holds the table resident, spilling (typed,
  evented) when the home is saturated or draining;
* one tenant cannot monopolize a replica — quota sheds are typed
  ``tenant-quota``, weighted-fair slot formation serves a quiet tenant
  within a bounded number of rounds no matter the flood depth, and the
  starvation watchdog fires events when (and only when) a request is
  genuinely passed over beyond the bound;
* N replicas share one result cache safely under concurrent readers
  and version sweeps, and a rolling table update never leaves the
  fleet without serving capacity — while every answer stays equal to
  the reference executor's output.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np
import pytest

from repro.engine.cluster import ClusterConfig
from repro.engine.reference import run_reference
from repro.engine.sql import parse
from repro.engine.table import Table
from repro.errors import ConfigurationError, Overloaded
from repro.fleet import (
    ACTIVE,
    DRAINING,
    FabricTopology,
    FleetController,
    Link,
    QueryRouter,
    Replica,
    SwitchSpec,
    TenantQuota,
    WeightedFairPolicy,
)
from repro.obs import EventLog, MetricsRegistry
from repro.serve import QueryService, ResultCache, ServeClient
from repro.serve.cache import freeze_result
from repro.switch.resources import MINI, TOFINO, ResourceFootprint


@pytest.fixture
def fleet_tables():
    """Two tables so the router has distinct homes to resolve."""
    rng = np.random.default_rng(21)
    n = 800
    return {
        "Products": Table(
            "Products",
            {
                "seller": rng.integers(0, 30, n),
                "price": rng.integers(1, 100, n),
            },
        ),
        "Ratings": Table(
            "Ratings",
            {
                "seller": rng.integers(0, 30, n // 2),
                "stars": rng.integers(1, 6, n // 2),
            },
        ),
    }


FLEET_SQL = (
    "SELECT COUNT(*) FROM Products WHERE price > 50",
    "SELECT DISTINCT seller FROM Products",
    "SELECT COUNT(*) FROM Ratings WHERE stars > 3",
    "SELECT seller, MAX(price) FROM Products GROUP BY seller",
)


class TestTopology:
    def test_two_tier_shape(self):
        topo = FabricTopology.two_tier(tors=3, spines=2)
        assert len(topo) == 5
        assert [s.name for s in topo.tors] == ["tor-0", "tor-1", "tor-2"]
        assert [s.name for s in topo.spines] == ["spine-0", "spine-1"]
        # full bipartite uplinks
        assert set(topo.uplinks("tor-1")) == {"spine-0", "spine-1"}
        assert set(topo.downlinks("spine-0")) == {"tor-0", "tor-1", "tor-2"}

    def test_rejects_structural_nonsense(self):
        tor = SwitchSpec("tor-0", "tor")
        spine = SwitchSpec("spine-0", "spine")
        with pytest.raises(ConfigurationError):
            SwitchSpec("x", "core")  # unknown tier
        with pytest.raises(ConfigurationError):
            FabricTopology([tor], [])  # no spine
        with pytest.raises(ConfigurationError):
            FabricTopology([spine], [])  # no tor
        with pytest.raises(ConfigurationError):  # duplicate names
            FabricTopology(
                [tor, SwitchSpec("tor-0", "tor"), spine],
                [Link("tor-0", "spine-0")],
            )
        with pytest.raises(ConfigurationError):  # dangling link endpoint
            FabricTopology([tor, spine], [Link("tor-9", "spine-0")])
        with pytest.raises(ConfigurationError):  # duplicate link
            FabricTopology(
                [tor, spine],
                [Link("tor-0", "spine-0"), Link("tor-0", "spine-0")],
            )
        with pytest.raises(ConfigurationError):  # unlinked ToR
            FabricTopology(
                [tor, SwitchSpec("tor-1", "tor"), spine],
                [Link("tor-0", "spine-0")],
            )
        with pytest.raises(ConfigurationError):  # wrong-way link
            FabricTopology([tor, spine], [Link("spine-0", "tor-0")])

    def test_home_tor_is_deterministic(self):
        topo = FabricTopology.two_tier(tors=4)
        homes = {name: topo.home_tor(name).name for name in
                 ("Products", "Ratings", "UserVisits", "Rankings")}
        for name, home in homes.items():
            assert topo.home_tor(name).name == home  # stable across calls
        rebuilt = FabricTopology.two_tier(tors=4)
        for name, home in homes.items():
            assert rebuilt.home_tor(name).name == home

    def test_fits_respects_switch_model(self):
        topo = FabricTopology.two_tier(
            tors=1, spines=1, tor_model=MINI
        )
        huge = ResourceFootprint(
            label="huge", stages=MINI.stages + 1, alus=1,
            sram_bits=1, tcam_entries=0,
        )
        small = ResourceFootprint(
            label="small", stages=1, alus=1, sram_bits=8, tcam_entries=0,
        )
        assert topo.fits(small, "tor-0")
        assert not topo.fits(huge, "tor-0")

    def test_build_tree_assembles_switch_tree(self):
        topo = FabricTopology.two_tier(tors=2, spines=1)
        made = []

        def leaf(tor):
            made.append(tor.name)
            return f"leaf({tor.name})"

        tree = topo.build_tree(leaf, root="root-switch")
        assert made == ["tor-0", "tor-1"]
        assert len(tree.leaves) == 2


class TestTenantQuota:
    @dataclass
    class Req:
        tenant: str
        id: int = 0

    def test_default_share_and_overrides(self):
        quota = TenantQuota(max_share=0.25, limits={"vip": 10})
        assert quota.limit_for("anyone", 16) == 4
        assert quota.limit_for("vip", 16) == 10

    def test_check_sheds_only_over_quota(self):
        quota = TenantQuota(max_share=0.5, min_queued=1)
        queue = [self.Req("loud"), self.Req("loud"), self.Req("quiet")]
        assert quota.check(self.Req("loud"), queue, max_depth=4) is not None
        assert quota.check(self.Req("quiet"), queue, max_depth=4) is None

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            TenantQuota(max_share=0.0)
        with pytest.raises(ConfigurationError):
            TenantQuota(min_queued=0)

    def test_service_sheds_typed_tenant_quota(self, fleet_tables):
        service = QueryService(
            fleet_tables, workers=3, max_queue=8,
            quota=TenantQuota(max_share=0.25, min_queued=1),
        )
        try:
            service.pause()
            service.submit(parse(FLEET_SQL[0]), tenant="loud")
            service.submit(parse(FLEET_SQL[1]), tenant="loud")
            with pytest.raises(Overloaded) as caught:
                service.submit(parse(FLEET_SQL[3]), tenant="loud")
            assert caught.value.reason == "tenant-quota"
            # another tenant is still admissible
            service.submit(parse(FLEET_SQL[2]), tenant="quiet")
            service.resume()
            counters = service.registry.counter_values()
            assert counters.get("serve_shed_total{reason=tenant-quota}") == 1
        finally:
            service.shutdown()


@dataclass
class FakeReq:
    """A queue entry as the fairness policy sees it."""

    tenant: str
    id: int


class TestWeightedFairPolicy:
    def test_round_robins_equal_weights(self):
        policy = WeightedFairPolicy()
        queue = [FakeReq("a", 1), FakeReq("a", 2), FakeReq("b", 3)]
        first = policy.select(queue)
        assert queue[first].tenant == "a"  # tie goes to queue order
        del queue[first]
        second = policy.select(queue)
        assert queue[second].tenant == "b"  # b's virtual time now trails

    def test_weights_bias_selection(self):
        policy = WeightedFairPolicy(weights={"heavy": 2.0})
        served = []
        queue = [FakeReq("heavy", 1), FakeReq("light", 2)]
        for i in range(9):
            index = policy.select(queue)
            served.append(queue[index].tenant)
        assert served.count("heavy") == 6  # 2:1 under contention
        assert served.count("light") == 3

    def test_new_tenant_banks_no_credit(self):
        policy = WeightedFairPolicy()
        queue = [FakeReq("old", 1)]
        for _ in range(50):
            policy.select(queue)
        queue.append(FakeReq("late", 2))
        index = policy.select(queue)
        # The late tenant joins at the current clock: it is next (its
        # vt equals the clock, below old's advanced vt) but has not
        # banked 50 rounds of credit — one select flips back to old.
        assert queue[index].tenant == "late"
        del queue[index]
        queue.append(FakeReq("late", 3))
        index = policy.select(queue)
        assert queue[index].tenant == "old"

    def test_starvation_watchdog_fires_once_per_excursion(self):
        registry = MetricsRegistry()
        events = EventLog(64, registry=registry)
        policy = WeightedFairPolicy(
            starvation_rounds=3, events=events, registry=registry
        )
        # a1 always leads (earliest of the min-vt tenant); a2 starves.
        queue = [FakeReq("a", 1), FakeReq("a", 2)]
        for _ in range(10):
            policy.select(queue)
        starved = [e for e in events.snapshot() if e["kind"] == "tenant-starvation"]
        assert len(starved) == 1  # flagged once, not every round after
        assert starved[0]["labels"]["tenant"] == "a"
        assert int(starved[0]["labels"]["rounds"]) >= 3
        assert policy.snapshot()["starvation_events"] == 1
        assert policy.snapshot()["max_rounds_waited"]["a"] >= 3

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            WeightedFairPolicy(default_weight=0)
        with pytest.raises(ConfigurationError):
            WeightedFairPolicy(weights={"t": -1})
        with pytest.raises(ConfigurationError):
            WeightedFairPolicy(starvation_rounds=0)


class TestFairnessRegression:
    """A flooding tenant must not starve a quiet tenant's slot formation."""

    def _positions(self, tables, fair: bool, flood: int = 8):
        policy = WeightedFairPolicy() if fair else None
        service = QueryService(
            tables, workers=3,
            config=ClusterConfig(seed=0, resident=False),
            max_queue=flood + 4, worker_threads=1,
            enable_packing=False, fairness=policy,
        )
        try:
            service.pause()
            tickets = [
                service.submit(
                    parse(f"SELECT COUNT(*) FROM Products WHERE price > {i}"),
                    tenant="flood",
                )
                for i in range(flood)
            ]
            quiet = service.submit(
                parse("SELECT COUNT(*) FROM Ratings WHERE stars > 2"),
                tenant="quiet",
            )
            service.resume()
            for ticket in tickets:
                ticket.result(30.0)
            quiet.result(30.0)
            ordered = sorted(
                tickets + [quiet], key=lambda t: t.timeline["completed"]
            )
            if policy is not None:
                assert policy.snapshot()["starvation_events"] == 0
            return ordered.index(quiet)
        finally:
            service.shutdown(drain=True)

    def test_quiet_tenant_served_within_bounded_rounds(self, fleet_tables):
        fifo = self._positions(fleet_tables, fair=False)
        fair = self._positions(fleet_tables, fair=True)
        assert fifo == 8, "FIFO serves the quiet tenant dead last"
        assert fair <= 2, (
            f"weighted-fair must serve the quiet tenant within a couple "
            f"of rounds of the flood, got position {fair}"
        )


@dataclass
class FakeReplica:
    """The replica surface the router reads, with scriptable state."""

    name: str
    tor: SwitchSpec
    state: str = ACTIVE
    occupancy: int = 0
    resident: set = field(default_factory=set)

    @property
    def active(self):
        return self.state == ACTIVE

    def holds_resident(self, table_name):
        return table_name in self.resident

    def resident_token(self):
        return f"tok-{self.name}"


class TestRouter:
    def make(self, occupancies=(0, 0), resident=("Products", "Ratings"),
             saturation=4, registry=None, events=None):
        topo = FabricTopology.two_tier(tors=2, spines=1)
        replicas = [
            FakeReplica(
                f"replica-{i}", topo.tors[i],
                occupancy=occupancies[i], resident=set(resident),
            )
            for i in range(2)
        ]
        router = QueryRouter(
            replicas, topo, saturation=saturation,
            registry=registry, events=events,
        )
        return topo, replicas, router

    def test_locality_routes_to_resident_home(self):
        topo, replicas, router = self.make()
        plan = parse(FLEET_SQL[0])
        home = topo.home_tor("Products").name
        replica, decision = router.route(plan)
        assert replica.tor.name == home
        assert decision.reason == "locality"
        assert decision.token == f"tok-{replica.name}"

    def test_spillover_when_home_saturated(self):
        registry = MetricsRegistry()
        events = EventLog(16, registry=registry)
        topo, replicas, router = self.make(
            saturation=1, registry=registry, events=events
        )
        plan = parse(FLEET_SQL[0])
        home_name = topo.home_tor("Products").name
        for replica in replicas:
            if replica.tor.name == home_name:
                replica.occupancy = 5  # past saturation
        replica, decision = router.route(plan, tenant="t0")
        assert replica.tor.name != home_name
        assert decision.reason == "spillover"
        spilled = [e for e in events.snapshot() if e["kind"] == "fleet-spillover"]
        assert spilled and spilled[0]["labels"]["tenant"] == "t0"
        assert spilled[0]["labels"]["table"] == "Products"
        assert spilled[0]["labels"]["target"] == replica.name

    def test_least_loaded_when_home_cold(self):
        topo, replicas, router = self.make(
            occupancies=(3, 1), resident=()
        )
        replica, decision = router.route(parse(FLEET_SQL[0]))
        assert decision.reason in ("spillover", "least-loaded")
        assert replica.occupancy == 1

    def test_no_active_replica_is_typed_overload(self):
        topo, replicas, router = self.make()
        for replica in replicas:
            replica.state = DRAINING
        with pytest.raises(Overloaded) as caught:
            router.route(parse(FLEET_SQL[0]))
        assert caught.value.reason == "no-active-replica"

    def test_rejects_bad_construction(self):
        topo = FabricTopology.two_tier(tors=1, spines=1)
        replica = FakeReplica("r", topo.tors[0])
        with pytest.raises(ConfigurationError):
            QueryRouter([], topo)
        with pytest.raises(ConfigurationError):
            QueryRouter([replica], topo, saturation=0)
        with pytest.raises(ConfigurationError):
            QueryRouter([replica, replica], topo)


class TestResultCacheSharing:
    """The shared cache must stay exact under concurrent fleet traffic."""

    def test_deep_freeze_isolates_nested_containers(self):
        frozen = freeze_result({"rows": [1, 2, 3], "tags": {"a"}})
        with pytest.raises(TypeError):
            frozen["rows"] = []
        with pytest.raises(TypeError):
            frozen["rows"].append(4)
        assert isinstance(frozen["tags"], frozenset)

    def test_evict_stale_is_a_floor_sweep(self):
        cache = ResultCache()
        cache.put("q", 1, 11)
        cache.put("q", 2, 22)
        cache.put("q", 3, 33)
        assert cache.evict_stale(2) == 1  # only the v1 entry drops
        assert cache.get("q", 2) == (True, 22)
        assert cache.get("q", 3) == (True, 33)
        assert cache.get("q", 1)[0] is False

    def test_concurrent_readers_sweeps_and_writes(self):
        cache = ResultCache(max_entries=64)
        errors = []
        stop = threading.Event()

        def reader():
            while not stop.is_set():
                for version in (1, 2, 3):
                    hit, value = cache.get("k", version)
                    if hit and value != version * 10:
                        errors.append((version, value))

        def writer():
            while not stop.is_set():
                for version in (1, 2, 3):
                    cache.put("k", version, version * 10)
                    cache.put(f"other-{version}", version, [version])

        def sweeper():
            while not stop.is_set():
                for version in (1, 2, 3):
                    cache.evict_stale(version)
                cache.invalidate_signature("other-1")

        threads = (
            [threading.Thread(target=reader, daemon=True) for _ in range(3)]
            + [threading.Thread(target=writer, daemon=True) for _ in range(2)]
            + [threading.Thread(target=sweeper, daemon=True)]
        )
        for thread in threads:
            thread.start()
        import time

        time.sleep(0.3)
        stop.set()
        for thread in threads:
            thread.join(5.0)
        assert not errors, f"stale or torn reads observed: {errors[:3]}"
        stats = cache.stats()
        assert stats["hits"] + stats["misses"] > 0


class TestClientRetries:
    def test_retry_succeeds_after_shed_and_counts(self, fleet_tables):
        service = QueryService(fleet_tables, workers=3, max_queue=1)
        expected = run_reference(parse(FLEET_SQL[0]), fleet_tables)
        try:
            service.pause()
            blocker = service.submit(parse(FLEET_SQL[1]))  # fills the queue
            release = threading.Timer(0.15, service.resume)
            release.start()
            client = ServeClient(
                service, tenant="retry", retries=40, backoff=0.01, seed=7
            )
            assert client.query(FLEET_SQL[0]) == expected
            blocker.result(10.0)
            counters = service.registry.counter_values()
            assert counters.get("client_retries_total{tenant=retry}", 0) > 0
        finally:
            service.shutdown()

    def test_no_retries_raises_immediately(self, fleet_tables):
        service = QueryService(fleet_tables, workers=3, max_queue=1)
        try:
            service.pause()
            service.submit(parse(FLEET_SQL[1]))
            client = ServeClient(service, tenant="flood")
            with pytest.raises(Overloaded):
                client.query(FLEET_SQL[0])
            service.resume()
        finally:
            service.shutdown()

    def test_query_many_retries_positionally(self, fleet_tables):
        expected = [run_reference(parse(sql), fleet_tables) for sql in FLEET_SQL]
        with QueryService(fleet_tables, workers=3, max_queue=2) as service:
            client = ServeClient(
                service, tenant="batch", retries=40, backoff=0.01, seed=3
            )
            outputs = client.query_many(FLEET_SQL)
            assert outputs == expected


class TestFleetIntegration:
    def test_answers_exact_and_cache_shared_across_replicas(self, fleet_tables):
        expected = {
            sql: run_reference(parse(sql), fleet_tables) for sql in FLEET_SQL
        }
        topology = FabricTopology.two_tier(tors=2, spines=1)
        with FleetController(
            fleet_tables, topology=topology, replicas=2, seed=5
        ) as fleet:
            for sql in FLEET_SQL:
                assert fleet.query(sql) == expected[sql]
            # Force the same query onto the *other* replica: the shared
            # cache must hit even though that replica never ran it.
            plan = parse(FLEET_SQL[0])
            first, _ = fleet.router.route(plan)
            before = fleet.results.stats()["hits"]
            first.state = DRAINING
            try:
                other, decision = fleet.router.route(plan)
                assert other is not first
                assert fleet.query(FLEET_SQL[0]) == expected[FLEET_SQL[0]]
            finally:
                first.state = ACTIVE
            assert fleet.results.stats()["hits"] > before

    def test_rolling_update_never_fully_drains(self, fleet_tables):
        rng = np.random.default_rng(99)
        n = 800
        new_tables = {
            "Products": Table(
                "Products",
                {
                    "seller": rng.integers(0, 30, n),
                    "price": rng.integers(1, 100, n),
                },
            ),
            "Ratings": Table(
                "Ratings",
                {
                    "seller": rng.integers(0, 30, n // 2),
                    "stars": rng.integers(1, 6, n // 2),
                },
            ),
        }
        old = run_reference(parse(FLEET_SQL[0]), fleet_tables)
        new = run_reference(parse(FLEET_SQL[0]), new_tables)
        with FleetController(fleet_tables, replicas=2, seed=5) as fleet:
            assert fleet.query(FLEET_SQL[0]) == old
            stop = threading.Event()
            errors = []

            def load():
                client = ServeClient(fleet, tenant="load", retries=5, seed=2)
                while not stop.is_set():
                    output = client.query(FLEET_SQL[0])
                    if output not in (old, new):
                        errors.append(output)

            thread = threading.Thread(target=load, daemon=True)
            thread.start()
            try:
                version = fleet.rolling_update(new_tables)
            finally:
                stop.set()
                thread.join(10.0)
            assert version == 1
            assert fleet.last_update_kept_capacity
            assert not errors, "an in-window answer matched neither version"
            assert fleet.query(FLEET_SQL[0]) == new
            phases = [
                e["labels"]["phase"]
                for e in fleet.events.snapshot()
                if e["kind"] == "rolling-update"
            ]
            assert phases.count("drain") == 2
            assert phases.count("swap") == 2
            assert phases.count("readmit") == 2
            assert phases[-1] == "complete"

    def test_overloaded_submit_spills_to_sibling(self, fleet_tables):
        with FleetController(
            fleet_tables, replicas=2, max_queue=1, seed=5
        ) as fleet:
            plan = parse(FLEET_SQL[0])
            target, _ = fleet.router.route(plan)
            target.service.pause()
            try:
                target.service.submit(parse(FLEET_SQL[1]))  # fill its queue
                # The fleet submit reroutes to the sibling instead of
                # surfacing the shed.
                expected = run_reference(plan, fleet_tables)
                assert fleet.query(FLEET_SQL[0]) == expected
            finally:
                target.service.resume()

    def test_report_envelope_and_serve_client_duck_typing(self, fleet_tables):
        with FleetController(fleet_tables, replicas=2, seed=5) as fleet:
            client = ServeClient(fleet, tenant="duck", retries=1, seed=0)
            expected = run_reference(parse(FLEET_SQL[2]), fleet_tables)
            assert client.query(FLEET_SQL[2]) == expected
            report = fleet.report()
        assert report["benchmark"] == "fleet"
        assert "duck" in report["latency_ms"]
        assert report["summary"]["starvation_events"] == 0
        assert report["summary"]["replicas"] == 2
        assert len(report["replicas"]) == 2
        assert {e["kind"] for e in report["events"]} >= {"lifecycle"}

    def test_rejects_zero_replicas(self, fleet_tables):
        with pytest.raises(ConfigurationError):
            FleetController(fleet_tables, replicas=0)
