"""The serving layer: exactness under concurrency, packing, shedding.

The contract under test is the one ``repro.serve`` exists to keep:
every answer a client receives equals ``Cluster.run_verified``'s output
for the same query — under concurrent load, under §6 packed scheduling,
under induced overload (shed requests fail with a typed
:class:`~repro.errors.Overloaded`, never a wrong answer), and during a
graceful drain.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.engine.cluster import Cluster, ClusterConfig
from repro.engine.reference import run_reference
from repro.engine.sql import parse
from repro.engine.table import Table
from repro.errors import ConfigurationError, Overloaded, PlanError
from repro.serve import (
    AdmissionController,
    PackingScheduler,
    ProgramCache,
    QueryService,
    Request,
    ResultCache,
    ServeClient,
)


@pytest.fixture
def serve_tables():
    """A two-table workload big enough that pruning/packing matter."""
    rng = np.random.default_rng(42)
    n = 1500
    products = Table(
        "Products",
        {
            "seller": rng.integers(0, 40, n),
            "price": rng.integers(1, 100, n),
            "stock": rng.integers(0, 10, n),
        },
    )
    ratings = Table(
        "Ratings",
        {
            "seller": rng.integers(0, 40, n // 2),
            "stars": rng.integers(1, 6, n // 2),
        },
    )
    return {"Products": products, "Ratings": ratings}


#: Mixed operators: filter/COUNT, DISTINCT, TOP N, GROUP BY (packable)
#: plus HAVING and JOIN (multi-pass, always solo slots).
MIXED_SQL = (
    "SELECT COUNT(*) FROM Products WHERE price > 50",
    "SELECT DISTINCT seller FROM Products",
    "SELECT TOP 5 price FROM Products ORDER BY price DESC",
    "SELECT seller, MAX(price) FROM Products GROUP BY seller",
    "SELECT seller FROM Products GROUP BY seller HAVING COUNT(price) > 30",
    "SELECT * FROM Products JOIN Ratings ON Products.seller = Ratings.seller",
)


def expected_outputs(tables):
    return {sql: run_reference(parse(sql), tables) for sql in MIXED_SQL}


class TestConcurrentExactness:
    def test_mixed_concurrent_clients_match_run_verified(self, serve_tables):
        expected = expected_outputs(serve_tables)
        cluster = Cluster(workers=4)
        for sql in MIXED_SQL:  # the reference the service must match
            assert cluster.run_verified(parse(sql), serve_tables).output == expected[sql]
        errors = []
        with QueryService(serve_tables, workers=4, worker_threads=3) as service:

            def client_loop(index):
                try:
                    client = ServeClient(service, tenant=f"tenant-{index % 3}")
                    for i, sql in enumerate(MIXED_SQL):
                        assert client.query(sql) == expected[sql]
                except Exception as error:  # pragma: no cover - failure path
                    errors.append(error)

            threads = [
                threading.Thread(target=client_loop, args=(i,)) for i in range(6)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert errors == []

    def test_query_many_batch_is_exact(self, serve_tables):
        expected = expected_outputs(serve_tables)
        with QueryService(serve_tables, workers=3) as service:
            outs = ServeClient(service).query_many(list(MIXED_SQL) * 2)
        assert outs == [expected[sql] for sql in MIXED_SQL] * 2

    def test_verify_mode_checks_against_reference(self, serve_tables):
        with QueryService(serve_tables, workers=3, verify=True) as service:
            assert (
                service.query(MIXED_SQL[0])
                == run_reference(parse(MIXED_SQL[0]), serve_tables)
            )

    def test_parallel_cluster_config_flows_through(self, serve_tables):
        config = ClusterConfig(parallelism=2)
        with QueryService(serve_tables, workers=4, config=config) as service:
            assert (
                service.query(MIXED_SQL[0])
                == run_reference(parse(MIXED_SQL[0]), serve_tables)
            )

    def test_engine_error_fails_only_that_request(self, serve_tables):
        with QueryService(serve_tables, workers=3) as service:
            with pytest.raises(PlanError):
                service.query("SELECT COUNT(*) FROM Products WHERE nope > 1")
            # the service survives and keeps answering exactly
            assert service.query(MIXED_SQL[0]) == run_reference(
                parse(MIXED_SQL[0]), serve_tables
            )


class TestPackingScheduler:
    def make(self, tables, **kwargs):
        cluster = Cluster(workers=3)
        return cluster, PackingScheduler(cluster, ProgramCache(), **kwargs)

    def test_packs_compatible_single_pass_queries(self, serve_tables):
        _, scheduler = self.make(serve_tables)
        head = Request(parse(MIXED_SQL[0]))
        queued = [Request(parse(sql)) for sql in MIXED_SQL[1:4]]
        extras = scheduler.plan_extras(head, queued, serve_tables)
        assert extras == queued[: scheduler.max_pack - 1]

    def test_respects_max_pack(self, serve_tables):
        _, scheduler = self.make(serve_tables, max_pack=2)
        head = Request(parse(MIXED_SQL[0]))
        queued = [Request(parse(sql)) for sql in MIXED_SQL[1:4]]
        assert len(scheduler.plan_extras(head, queued, serve_tables)) == 1

    def test_rejects_multi_pass_and_other_tables(self, serve_tables):
        _, scheduler = self.make(serve_tables)
        head = Request(parse(MIXED_SQL[0]))
        join = Request(parse(MIXED_SQL[5]))
        having = Request(parse(MIXED_SQL[4]))
        other_table = Request(parse("SELECT DISTINCT seller FROM Ratings"))
        extras = scheduler.plan_extras(
            head, [join, having, other_table], serve_tables
        )
        assert extras == []

    def test_where_queries_never_pack(self, serve_tables):
        _, scheduler = self.make(serve_tables)
        assert not scheduler.packable(
            parse("SELECT DISTINCT seller FROM Products WHERE price > 4")
        )
        head = Request(parse("SELECT DISTINCT seller FROM Products WHERE price > 4"))
        assert scheduler.plan_extras(
            head, [Request(parse(MIXED_SQL[1]))], serve_tables
        ) == []

    def test_disabled_packing_always_solo(self, serve_tables):
        _, scheduler = self.make(serve_tables, enable_packing=False)
        head = Request(parse(MIXED_SQL[0]))
        queued = [Request(parse(sql)) for sql in MIXED_SQL[1:4]]
        assert scheduler.plan_extras(head, queued, serve_tables) == []

    def test_max_pack_must_be_positive(self, serve_tables):
        with pytest.raises(ConfigurationError):
            self.make(serve_tables, max_pack=0)


class TestPackedServing:
    def test_paused_backlog_leaves_in_packed_slot(self, serve_tables):
        expected = expected_outputs(serve_tables)
        service = QueryService(serve_tables, workers=4)
        try:
            service.pause()
            tickets = [service.submit(sql) for sql in MIXED_SQL[:4]]
            service.resume()
            outputs = [ticket.result(10.0) for ticket in tickets]
            assert outputs == [expected[sql] for sql in MIXED_SQL[:4]]
            summary = service.report()["summary"]
            assert summary["packed_queries"] >= 2
            assert summary["slots_packed"] >= 1
        finally:
            service.shutdown()

    def test_packed_and_solo_results_identical(self, serve_tables):
        expected = expected_outputs(serve_tables)
        packed = QueryService(serve_tables, workers=4)
        solo = QueryService(serve_tables, workers=4, enable_packing=False)
        try:
            for svc in (packed, solo):
                svc.pause()
            packed_tickets = [packed.submit(sql) for sql in MIXED_SQL[:4]]
            solo_tickets = [solo.submit(sql) for sql in MIXED_SQL[:4]]
            for svc in (packed, solo):
                svc.resume()
            packed_out = [t.result(10.0) for t in packed_tickets]
            solo_out = [t.result(10.0) for t in solo_tickets]
            assert packed_out == solo_out == [expected[s] for s in MIXED_SQL[:4]]
            assert solo.report()["summary"]["packed_queries"] == 0
        finally:
            packed.shutdown()
            solo.shutdown()


class TestOverloadShedding:
    def test_queue_full_sheds_typed_never_wrong(self, serve_tables):
        expected = expected_outputs(serve_tables)
        service = QueryService(serve_tables, workers=3, max_queue=2)
        try:
            service.pause()
            accepted, shed = [], []
            for _ in range(10):
                try:
                    accepted.append(service.submit(parse(MIXED_SQL[1])))
                except Overloaded as error:
                    assert error.reason == "queue-full"
                    shed.append(error)
            service.resume()
            assert shed, "overload never triggered"
            # every accepted request still gets the exact answer
            for ticket in accepted:
                assert ticket.result(10.0) == expected[MIXED_SQL[1]]
            summary = service.report()["summary"]
            assert summary["failed"] == 0
        finally:
            service.shutdown()

    def test_expired_deadline_sheds_at_admission(self, serve_tables):
        with QueryService(serve_tables, workers=3) as service:
            service.pause()
            try:
                with pytest.raises(Overloaded) as caught:
                    service.submit(MIXED_SQL[1], timeout=-0.001)
                assert caught.value.reason == "deadline"
            finally:
                service.resume()

    def test_deadline_expiring_in_queue_sheds_at_dispatch(self, serve_tables):
        service = QueryService(serve_tables, workers=3)
        try:
            service.pause()
            ticket = service.submit(MIXED_SQL[1], timeout=0.02)
            import time

            time.sleep(0.08)
            service.resume()
            with pytest.raises(Overloaded) as caught:
                ticket.result(10.0)
            assert caught.value.reason == "deadline"
        finally:
            service.shutdown()

    def test_shed_counter_labeled_by_reason(self, serve_tables):
        service = QueryService(serve_tables, workers=3, max_queue=1)
        try:
            service.pause()
            service.submit(parse(MIXED_SQL[1]))
            with pytest.raises(Overloaded):
                service.submit(parse(MIXED_SQL[2]))
            service.resume()
            counters = service.registry.counter_values()
            assert counters.get("serve_shed_total{reason=queue-full}") == 1
        finally:
            service.shutdown()


class TestGracefulDrain:
    def test_drain_completes_admitted_requests(self, serve_tables):
        expected = expected_outputs(serve_tables)
        service = QueryService(serve_tables, workers=3)
        service.pause()
        tickets = [service.submit(sql) for sql in MIXED_SQL]
        service.resume()
        service.shutdown(drain=True)
        for sql, ticket in zip(MIXED_SQL, tickets):
            assert ticket.result(0.0) == expected[sql]
        summary = service.report()["summary"]
        assert summary["queue_depth"] == 0
        assert summary["inflight"] == 0

    def test_submit_after_shutdown_is_typed_shed(self, serve_tables):
        service = QueryService(serve_tables, workers=3)
        service.query(MIXED_SQL[0])  # warm the result cache
        service.shutdown()
        with pytest.raises(Overloaded) as caught:
            service.submit(MIXED_SQL[0])  # even a cache hit is refused
        assert caught.value.reason == "shutting-down"

    def test_non_drain_shutdown_sheds_backlog_typed(self, serve_tables):
        service = QueryService(serve_tables, workers=3)
        service.pause()
        tickets = [service.submit(parse(sql)) for sql in MIXED_SQL[:3]]
        service.shutdown(drain=False)
        reasons = []
        for ticket in tickets:
            try:
                ticket.result(5.0)
            except Overloaded as error:
                reasons.append(error.reason)
        assert reasons.count("shutting-down") == len(reasons)
        assert reasons  # at least the still-queued requests were shed

    def test_shutdown_is_idempotent(self, serve_tables):
        service = QueryService(serve_tables, workers=3)
        service.shutdown()
        service.shutdown()


class TestResultCache:
    def test_canonicalized_hit_and_version_invalidation(self, serve_tables):
        service = QueryService(serve_tables, workers=3)
        try:
            first = service.query("select count(*) from Products where price > 50")
            second = service.query("SELECT COUNT(*)  FROM Products WHERE price > 50")
            assert first == second
            assert service.report()["summary"]["cache_hits"] == 1
            service.update_tables()
            third = service.query(MIXED_SQL[0])
            assert third == first
            assert service.report()["summary"]["cache_hits"] == 1  # miss after bump
        finally:
            service.shutdown()

    def test_cached_output_is_isolated_from_mutation(self, serve_tables):
        service = QueryService(serve_tables, workers=3)
        try:
            first = service.query(MIXED_SQL[1])
            first.add("sabotage")
            second = service.query(MIXED_SQL[1])
            assert "sabotage" not in second
        finally:
            service.shutdown()

    def test_lru_unit(self):
        cache = ResultCache(max_entries=2)
        cache.put("a", 0, {1})
        cache.put("b", 0, {2})
        cache.put("c", 0, {3})
        assert cache.get("a", 0) == (False, None)
        assert cache.get("b", 0) == (True, {2})
        assert cache.get("b", 1) == (False, None)  # version mismatch


class TestAdmissionUnit:
    def test_backlog_estimate_sheds_tight_deadlines(self):
        controller = AdmissionController(max_depth=10, concurrency=1)
        controller.note_service_seconds(10.0)  # pathological EWMA
        query = parse("SELECT COUNT(*) FROM T WHERE x > 1")
        import time

        controller.admit(Request(query))  # no deadline: always admitted
        with pytest.raises(Overloaded) as caught:
            controller.admit(
                Request(query, deadline=time.monotonic() + 0.5)
            )
        assert caught.value.reason == "deadline"

    def test_depth_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            AdmissionController(max_depth=0)


class TestObservability:
    def test_gauges_histograms_and_spans_recorded(self, serve_tables):
        service = QueryService(serve_tables, workers=3)
        try:
            ServeClient(service, tenant="alpha").query(MIXED_SQL[0])
            ServeClient(service, tenant="beta").query(MIXED_SQL[1])
            report = service.report()
            assert report["benchmark"] == "serving"
            assert set(report["latency_ms"]) == {"alpha", "beta"}
            for figures in report["latency_ms"].values():
                assert figures["count"] == 1
                assert figures["p99"] >= figures["p50"] >= 0.0
            gauges = service.registry.gauge_values()
            assert "serve_queue_depth{}" in gauges
            assert "serve_inflight{}" in gauges
            span_names = {span.name for span in service.registry.spans}
            assert {"serve-queued", "serve-execute", "serve-request"} <= span_names
        finally:
            service.shutdown()

    def test_report_is_schema_valid_envelope(self, serve_tables):
        import json
        import os
        import sys

        scripts = os.path.join(os.path.dirname(__file__), "..", "scripts")
        sys.path.insert(0, scripts)
        try:
            import check_metrics_schema
        finally:
            sys.path.remove(scripts)
        with QueryService(serve_tables, workers=3) as service:
            service.query(MIXED_SQL[0])
            report = service.report()
        json.dumps(report)  # must be JSON-serializable
        problems = []
        check_metrics_schema._check_bench_envelope(report, "report", problems)
        assert problems == []
