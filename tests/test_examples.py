"""Every example script must run to completion (scaled down where slow)."""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def _run(script: str, argv=()):
    old_argv = sys.argv
    sys.argv = [script, *argv]
    try:
        runpy.run_path(str(EXAMPLES / script), run_name="__main__")
    finally:
        sys.argv = old_argv


def test_quickstart_runs(capsys):
    _run("quickstart.py")
    out = capsys.readouterr().out
    assert "McCheetah" in out
    assert "pruned" in out


def test_bigdata_benchmark_runs(capsys):
    _run("bigdata_benchmark.py", ["--rows", "8000"])
    out = capsys.readouterr().out
    assert "Q5-groupby" in out
    assert "verified" in out


def test_tpch_q3_runs(capsys):
    _run("tpch_q3.py")
    out = capsys.readouterr().out
    assert "top 10 orders" in out
    assert "netaccel drain" in out


def test_reliability_demo_runs(capsys):
    _run("reliability_demo.py")
    out = capsys.readouterr().out
    assert "exact" in out


def test_multi_query_packing_runs(capsys):
    _run("multi_query_packing.py")
    out = capsys.readouterr().out
    assert "rejected by the compiler" in out
    assert "fits" in out


def test_sql_interface_runs(capsys):
    _run("sql_interface.py")
    out = capsys.readouterr().out
    assert "SKYLINE" in out
    assert "verified equal" in out


def test_extensions_demo_runs(capsys):
    _run("extensions_demo.py")
    out = capsys.readouterr().out
    assert "switch tree" in out
    assert "verified exact" in out
