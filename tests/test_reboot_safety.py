"""Empirical verification of the reboot-safety analysis (core.summary).

§3: "If the switch fails, operators can simply reboot the switch with
empty states."  That is only sound for algorithms whose empty state
forwards everything already justified — these tests inject a mid-stream
``reset()`` (the reboot) and check which operators keep the pruning
contract and which demonstrably break, matching the TABLE4
classification.
"""

from __future__ import annotations

import random

import pytest

from repro.core.base import PruneDecision
from repro.core.distinct import DistinctPruner, master_distinct
from repro.core.groupby import GroupByPruner, master_groupby
from repro.core.having import HavingPruner, master_having, reference_having
from repro.core.join import JoinPruner
from repro.core.skyline import SkylinePruner, master_skyline
from repro.core.summary import TABLE4, reboot_safe_algorithms, render_table4
from repro.core.topn import (
    TopNDeterministicPruner,
    TopNRandomizedPruner,
    master_topn,
)
from repro.workloads.synthetic import keyed_values, random_order_stream, uniform_points


def _run_with_reboot(pruner, stream, reboot_at):
    """Survivors of a stream with a switch reboot after ``reboot_at`` entries."""
    survivors = []
    for i, entry in enumerate(stream):
        if i == reboot_at:
            pruner.reset()  # reboot with empty state
        if pruner.process(entry) is PruneDecision.FORWARD:
            survivors.append(entry)
    return survivors


def _run_with_reboot_batched(pruner, stream, reboot_at, chunk=256):
    """Batched twin of :func:`_run_with_reboot`.

    Feeds the stream through ``process_batch`` in ``chunk``-sized slices,
    injecting the reboot (``reset()``) at entry ``reboot_at`` exactly as
    the scalar helper does — the reboot may land mid-chunk, in which case
    the chunk is split around it.
    """
    survivors = []
    spans = [(0, reboot_at), (reboot_at, len(stream))]
    for lo, hi in spans:
        if lo == reboot_at:
            pruner.reset()  # reboot with empty state
        for start in range(lo, hi, chunk):
            piece = stream[start : min(start + chunk, hi)]
            if not piece:
                continue
            keep = pruner.process_batch(piece)
            survivors.extend(entry for entry, k in zip(piece, keep) if k)
    return survivors


class TestRebootSafeOperators:
    def test_distinct_survives_reboot(self):
        stream = random_order_stream(4000, 300, seed=1)
        pruner = DistinctPruner(rows=64, cols=2)
        survivors = _run_with_reboot(pruner, stream, reboot_at=2000)
        assert set(master_distinct(survivors)) == set(stream)

    def test_topn_deterministic_survives_reboot(self):
        rng = random.Random(2)
        stream = [rng.uniform(1, 10_000) for _ in range(3000)]
        pruner = TopNDeterministicPruner(n=40, thresholds=4)
        survivors = _run_with_reboot(pruner, stream, reboot_at=1500)
        assert sorted(master_topn(survivors, 40)) == sorted(master_topn(stream, 40))

    def test_topn_randomized_survives_reboot(self):
        rng = random.Random(3)
        stream = [rng.uniform(1, 10_000) for _ in range(3000)]
        pruner = TopNRandomizedPruner(n=30, rows=512, delta=1e-4, seed=4)
        survivors = _run_with_reboot(pruner, stream, reboot_at=1500)
        assert sorted(master_topn(survivors, 30)) == sorted(master_topn(stream, 30))

    def test_groupby_survives_reboot(self):
        stream = keyed_values(4000, 150, seed=5)
        pruner = GroupByPruner(rows=64, cols=4)
        survivors = _run_with_reboot(pruner, stream, reboot_at=2000)
        assert master_groupby(survivors, "max") == master_groupby(
            list(stream), "max"
        )

    def test_reboot_at_any_point_distinct(self):
        stream = random_order_stream(1000, 100, seed=6)
        for reboot_at in (0, 1, 500, 999):
            pruner = DistinctPruner(rows=16, cols=2)
            survivors = _run_with_reboot(pruner, stream, reboot_at)
            assert set(master_distinct(survivors)) == set(stream)


class TestRebootSafeOperatorsBatched:
    """Same TABLE4 classification, exercised through ``process_batch``.

    The batch dataplane must inherit the reboot-safety analysis verbatim:
    a reboot between (or inside) batches behaves exactly like one between
    scalar entries.
    """

    def test_distinct_survives_reboot_batched(self):
        stream = random_order_stream(4000, 300, seed=1)
        pruner = DistinctPruner(rows=64, cols=2)
        survivors = _run_with_reboot_batched(pruner, stream, reboot_at=2000)
        assert set(master_distinct(survivors)) == set(stream)

    def test_topn_deterministic_survives_reboot_batched(self):
        rng = random.Random(2)
        stream = [rng.uniform(1, 10_000) for _ in range(3000)]
        pruner = TopNDeterministicPruner(n=40, thresholds=4)
        survivors = _run_with_reboot_batched(pruner, stream, reboot_at=1500)
        assert sorted(master_topn(survivors, 40)) == sorted(master_topn(stream, 40))

    def test_topn_randomized_survives_reboot_batched(self):
        rng = random.Random(3)
        stream = [rng.uniform(1, 10_000) for _ in range(3000)]
        pruner = TopNRandomizedPruner(n=30, rows=512, delta=1e-4, seed=4)
        survivors = _run_with_reboot_batched(pruner, stream, reboot_at=1500)
        assert sorted(master_topn(survivors, 30)) == sorted(master_topn(stream, 30))

    def test_groupby_survives_reboot_batched(self):
        stream = list(keyed_values(4000, 150, seed=5))
        pruner = GroupByPruner(rows=64, cols=4)
        survivors = _run_with_reboot_batched(pruner, stream, reboot_at=2000)
        assert master_groupby(survivors, "max") == master_groupby(stream, "max")

    def test_mid_chunk_reboot_distinct(self):
        # reboot_at deliberately NOT on a chunk boundary
        stream = random_order_stream(1000, 100, seed=6)
        for reboot_at in (1, 131, 999):
            pruner = DistinctPruner(rows=16, cols=2)
            survivors = _run_with_reboot_batched(
                pruner, stream, reboot_at, chunk=128
            )
            assert set(master_distinct(survivors)) == set(stream)

    def test_join_breaks_on_reboot_batched(self):
        # The batch probe inherits JOIN's restart-required classification:
        # an emptied Bloom filter prunes genuinely matching keys.
        left, right = [1, 2, 3], [2, 3, 4]
        pruner = JoinPruner("L", "R", memory_bits=1 << 12)
        pruner.build(left, right)
        assert pruner.process_batch([("L", 2)])[0]
        pruner.reset()
        pruner.seal()  # naive continuation without rebuilding
        keep = pruner.process_batch([("L", 2), ("L", 3)])
        assert not keep.any()  # wrong! matching keys pruned


class TestRestartRequiredOperators:
    """The operators TABLE4 flags must demonstrably break on reboot."""

    def test_join_breaks_on_reboot(self):
        # A reboot empties the Bloom filters: matching keys get pruned.
        left, right = [1, 2, 3], [2, 3, 4]
        pruner = JoinPruner("L", "R", memory_bits=1 << 12)
        pruner.build(left, right)
        assert pruner.process(("L", 2)) is PruneDecision.FORWARD
        pruner.reset()
        pruner.seal()  # naive continuation without rebuilding
        assert pruner.process(("L", 3)) is PruneDecision.PRUNE  # wrong!

    def test_having_can_lose_a_straddling_key(self):
        # Key "k" needs both halves to cross the threshold; a reboot in
        # between means neither half crosses and the key never forwards.
        stream = [("k", 30.0)] * 4 + [("k", 30.0)] * 4  # true sum 240
        threshold = 150.0
        pruner = HavingPruner(threshold=threshold, width=64, depth=3)
        survivors = _run_with_reboot(pruner, stream, reboot_at=4)
        candidates = {key for key, _ in survivors}
        answer = set(master_having(candidates, stream, threshold))
        truth = set(reference_having(stream, threshold))
        assert truth == {"k"}
        assert answer != truth  # the reboot lost the output key

    def test_skyline_can_lose_stored_points(self):
        # The best point is absorbed into switch memory; a reboot before
        # the drain loses it.
        points = [(100.0, 100.0), (1.0, 1.0), (2.0, 2.0)]
        pruner = SkylinePruner(dims=2, points=4, score="sum")
        received = []
        for i, point in enumerate(points):
            if i == 1:
                pruner.reset()  # reboot: (100, 100) is gone
            if pruner.process(point) is PruneDecision.FORWARD:
                received.append(pruner.last_carried)
        received.extend(pruner.drain())
        assert (100.0, 100.0) not in set(master_skyline(received))


class TestSummaryTable:
    def test_table4_has_all_algorithms(self):
        names = {row.name for row in TABLE4}
        assert {"DISTINCT", "SKYLINE", "TOP N (det)", "TOP N (rand)",
                "GROUP BY", "JOIN", "HAVING"} <= names

    def test_reboot_safe_set_matches_analysis(self):
        safe = set(reboot_safe_algorithms())
        assert "DISTINCT" in safe and "GROUP BY" in safe
        assert "JOIN" not in safe and "HAVING" not in safe and "SKYLINE" not in safe

    def test_render_produces_aligned_lines(self):
        lines = render_table4()
        assert len(lines) == 2 + len(TABLE4)
        assert "guarantee" in lines[0]
        assert all(len(line) > 10 for line in lines)

    def test_guarantees_match_pruner_classes(self):
        from repro.core.base import Guarantee

        by_name = {row.name: row for row in TABLE4}
        assert by_name["TOP N (rand)"].guarantee is Guarantee.PROBABILISTIC
        assert by_name["JOIN"].guarantee is Guarantee.DETERMINISTIC
        assert by_name["DISTINCT-FP"].guarantee is Guarantee.PROBABILISTIC
