"""Tests for the analytical sizing formulas (repro.core.sizing)."""

from __future__ import annotations

import math

import pytest

from repro.core.sizing import (
    TopNConfig,
    distinct_expected_pruning,
    topn_cols,
    topn_expected_pruning_rate,
    topn_expected_unpruned,
    topn_optimal_config,
    topn_optimal_rows,
)
from repro.errors import ConfigurationError


class TestTopNCols:
    def test_paper_examples(self):
        # §5: N=1000, delta=0.0001: d=600 -> w=16; d=8000 -> w=5.
        assert topn_cols(600, 1000, 1e-4) == 16
        assert topn_cols(8000, 1000, 1e-4) == 5

    def test_small_d_needs_many_cols(self):
        # d=200 -> w ~ 288 in the paper (we allow the formula's exact value).
        w = topn_cols(200, 1000, 1e-4)
        assert 250 <= w <= 320

    def test_monotone_decreasing_in_d(self):
        deltas = [topn_cols(d, 500, 1e-4) for d in (400, 1000, 4000, 16_000)]
        assert deltas == sorted(deltas, reverse=True)

    def test_infeasible_d_raises(self):
        with pytest.raises(ConfigurationError):
            topn_cols(10, 1000, 1e-4)

    def test_invalid_args(self):
        with pytest.raises(ConfigurationError):
            topn_cols(0, 10, 0.1)
        with pytest.raises(ConfigurationError):
            topn_cols(10, 0, 0.1)
        with pytest.raises(ConfigurationError):
            topn_cols(10, 10, 0.0)

    def test_at_least_one_column(self):
        assert topn_cols(10**6, 10, 1e-2) >= 1


class TestOptimalRows:
    def test_positive(self):
        assert topn_optimal_rows(1000, 1e-4) > 0

    def test_optimal_config_minimizes_cells(self):
        d_opt, w_opt = topn_optimal_config(1000, 1e-4)
        optimal_cells = d_opt * w_opt
        # Any feasible neighbor uses at least as many cells.
        for d in (d_opt // 2, d_opt * 2, 600, 8000):
            try:
                w = topn_cols(d, 1000, 1e-4)
            except ConfigurationError:
                continue
            assert d * w >= optimal_cells

    def test_invalid_args(self):
        with pytest.raises(ConfigurationError):
            topn_optimal_rows(0, 0.1)
        with pytest.raises(ConfigurationError):
            topn_optimal_rows(10, 2.0)


class TestTheorem3:
    def test_paper_example_8m(self):
        # d=600, w=16 matrix, m=8M: >= 99% pruning expected.
        rate = topn_expected_pruning_rate(8_000_000, 600, 16)
        assert rate >= 0.99

    def test_paper_example_100m(self):
        rate = topn_expected_pruning_rate(100_000_000, 600, 16)
        assert rate >= 0.999

    def test_formula_value(self):
        m, d, w = 100_000, 64, 4
        expected = d * w * math.log(m * math.e / (d * w))
        assert topn_expected_unpruned(m, d, w) == pytest.approx(expected)

    def test_short_stream_returns_m(self):
        assert topn_expected_unpruned(100, 64, 4) == 100.0

    def test_rate_improves_with_scale(self):
        small = topn_expected_pruning_rate(10**5, 600, 16)
        large = topn_expected_pruning_rate(10**8, 600, 16)
        assert large > small

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            topn_expected_unpruned(0, 1, 1)


class TestTopNConfig:
    def test_for_rows(self):
        config = TopNConfig.for_rows(1000, 1e-4, 600)
        assert config.cols == 16
        assert config.matrix_cells == 600 * 16

    def test_optimal(self):
        config = TopNConfig.optimal(1000, 1e-4)
        assert config.rows * config.cols == config.matrix_cells

    def test_expected_pruning_rate(self):
        config = TopNConfig.for_rows(1000, 1e-4, 600)
        assert config.expected_pruning_rate(8_000_000) >= 0.99


class TestDistinctExpectedPruning:
    def test_reexported_and_consistent(self):
        assert distinct_expected_pruning(15_000, 1000, 24) == pytest.approx(
            0.58, abs=0.02
        )
