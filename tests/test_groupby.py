"""Tests for GROUP BY pruning (repro.core.groupby)."""

from __future__ import annotations

import random

import pytest

from repro.core.base import Guarantee, PruneDecision
from repro.core.groupby import GroupByPruner, master_groupby
from repro.errors import ConfigurationError
from repro.workloads.synthetic import keyed_values


def _reference(stream, aggregate="max"):
    best = {}
    for key, value in stream:
        if key not in best:
            best[key] = value
        elif aggregate == "max" and value > best[key]:
            best[key] = value
        elif aggregate == "min" and value < best[key]:
            best[key] = value
    return best


class TestGroupByPruner:
    def test_first_key_occurrence_forwarded(self):
        pruner = GroupByPruner(rows=16, cols=2)
        assert pruner.process(("k", 5.0)) is PruneDecision.FORWARD

    def test_non_improving_value_pruned(self):
        pruner = GroupByPruner(rows=16, cols=2)
        pruner.process(("k", 5.0))
        assert pruner.process(("k", 3.0)) is PruneDecision.PRUNE

    def test_improving_value_forwarded(self):
        pruner = GroupByPruner(rows=16, cols=2)
        pruner.process(("k", 5.0))
        assert pruner.process(("k", 8.0)) is PruneDecision.FORWARD

    @pytest.mark.parametrize("aggregate", ["max", "min"])
    def test_contract_on_random_streams(self, aggregate):
        stream = keyed_values(5000, 200, seed=3)
        for rows, cols in [(1, 1), (16, 2), (256, 4)]:
            pruner = GroupByPruner(aggregate=aggregate, rows=rows, cols=cols)
            survivors = pruner.survivors(stream)
            assert master_groupby(survivors, aggregate) == _reference(
                stream, aggregate
            )

    def test_contract_under_heavy_eviction(self):
        # One cell total: constant eviction; correctness must survive.
        rng = random.Random(7)
        stream = [(rng.randrange(50), rng.uniform(0, 100)) for _ in range(3000)]
        pruner = GroupByPruner(rows=1, cols=1)
        survivors = pruner.survivors(stream)
        assert master_groupby(survivors, "max") == _reference(stream, "max")

    def test_large_matrix_approaches_opt(self):
        from repro.analysis.opt import opt_groupby_unpruned

        stream = keyed_values(10_000, 100, seed=5)
        pruner = GroupByPruner(rows=4096, cols=8)
        survivors = pruner.survivors(stream)
        opt = opt_groupby_unpruned(stream, "max")
        assert len(survivors) <= opt * 1.2

    def test_min_direction(self):
        pruner = GroupByPruner(aggregate="min", rows=16, cols=2)
        pruner.process(("k", 5.0))
        assert pruner.process(("k", 7.0)) is PruneDecision.PRUNE
        assert pruner.process(("k", 2.0)) is PruneDecision.FORWARD

    def test_unknown_aggregate_rejected(self):
        with pytest.raises(ConfigurationError):
            GroupByPruner(aggregate="sum")  # SUM needs the HAVING sketch path

    def test_guarantee(self):
        assert GroupByPruner().guarantee is Guarantee.DETERMINISTIC

    def test_footprint(self):
        fp = GroupByPruner(rows=4096, cols=8).footprint()
        assert fp.stages == 8
        assert fp.sram_bits == 4096 * 8 * 64

    def test_reset(self):
        pruner = GroupByPruner(rows=4, cols=2)
        pruner.process(("k", 1.0))
        pruner.reset()
        assert pruner.process(("k", 1.0)) is PruneDecision.FORWARD
        assert pruner.stats.processed == 1

    def test_keys_of_mixed_types(self):
        pruner = GroupByPruner(rows=8, cols=2)
        pruner.process(("str-key", 1.0))
        pruner.process((42, 1.0))
        assert pruner.process(("str-key", 0.5)) is PruneDecision.PRUNE


class TestMasterGroupBy:
    def test_max(self):
        assert master_groupby([("a", 1.0), ("a", 5.0), ("b", 2.0)]) == {
            "a": 5.0,
            "b": 2.0,
        }

    def test_min(self):
        assert master_groupby([("a", 1.0), ("a", 5.0)], "min") == {"a": 1.0}

    def test_empty(self):
        assert master_groupby([]) == {}

    def test_invalid_aggregate(self):
        with pytest.raises(ConfigurationError):
            master_groupby([], "median")
