"""Tests for Theorem-4 fingerprint sizing (repro.sketches.fingerprint)."""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigurationError
from repro.sketches.fingerprint import (
    FingerprintScheme,
    max_row_load,
    required_bits,
    required_bits_simple,
    scheme_for,
)


class TestFingerprintScheme:
    def test_width_enforced(self):
        with pytest.raises(ConfigurationError):
            FingerprintScheme(bits=0)
        with pytest.raises(ConfigurationError):
            FingerprintScheme(bits=65)

    def test_of_is_deterministic(self):
        scheme = FingerprintScheme(bits=32, seed=1)
        assert scheme.of("key") == scheme.of("key")

    def test_of_in_range(self):
        scheme = FingerprintScheme(bits=12)
        for i in range(200):
            assert 0 <= scheme.of(i) < 1 << 12

    def test_of_columns_order_sensitive(self):
        scheme = FingerprintScheme(bits=32)
        assert scheme.of_columns(["a", "b"]) != scheme.of_columns(["b", "a"])

    def test_seed_changes_fingerprints(self):
        assert FingerprintScheme(32, seed=1).of("x") != FingerprintScheme(32, seed=2).of("x")


class TestMaxRowLoad:
    def test_heavy_regime_is_e_d_over_d(self):
        # D >> d ln(2d/delta): load ~ e*D/d.
        load = max_row_load(distinct=1_000_000, rows=1000, delta=1e-4)
        assert load == pytest.approx(math.e * 1000, rel=1e-9)

    def test_medium_regime(self):
        d = 1000
        delta = 1e-4
        log_term = math.log(2 * d / delta)
        # Pick D inside [d ln(1/delta)/e, d ln(2d/delta)].
        distinct = int(d * log_term) - 10
        load = max_row_load(distinct, d, delta)
        assert load == pytest.approx(math.e * log_term, rel=1e-9)

    def test_light_regime_smaller_than_medium(self):
        light = max_row_load(distinct=100, rows=10_000, delta=1e-4)
        medium = math.e * math.log(2 * 10_000 / 1e-4)
        assert light < medium

    def test_monotone_in_distinct_heavy(self):
        a = max_row_load(10**6, 1000, 1e-4)
        b = max_row_load(10**7, 1000, 1e-4)
        assert b > a

    def test_invalid_args(self):
        with pytest.raises(ConfigurationError):
            max_row_load(-1, 10, 0.1)
        with pytest.raises(ConfigurationError):
            max_row_load(10, 0, 0.1)
        with pytest.raises(ConfigurationError):
            max_row_load(10, 10, 1.5)


class TestRequiredBits:
    def test_paper_example_500m_fits_64_bits(self):
        # d=1000, delta=0.01%: the paper says ~500M distinct elements fit
        # 64-bit fingerprints; the exact formula crosses 64 bits a hair
        # below 500M (ceil of 64.0002), so we check the claim at 450M.
        assert required_bits(450_000_000, 1000, 1e-4) <= 64
        assert required_bits(500_000_000, 1000, 1e-4) in (64, 65)

    def test_more_distinct_needs_more_bits(self):
        small = required_bits(10_000, 1000, 1e-4)
        large = required_bits(100_000_000, 1000, 1e-4)
        assert large > small

    def test_tighter_delta_needs_more_bits(self):
        loose = required_bits(10_000, 1000, 1e-2)
        tight = required_bits(10_000, 1000, 1e-6)
        assert tight > loose

    def test_saves_bits_versus_global_uniqueness(self):
        # Theorem 4's point: ~log d bits cheaper than requiring all
        # fingerprints distinct (~2 log D + log(1/delta)).
        d, distinct, delta = 1024, 1 << 24, 1e-4
        global_bits = math.ceil(math.log2(distinct**2 / delta))
        assert required_bits(distinct, d, delta) < global_bits

    def test_empirical_no_same_row_collision(self):
        # Build a scheme for 5000 distinct values on 64 rows and check
        # same-row collisions are absent (delta = 1%).
        from repro.sketches.hashing import hash_range

        distinct, rows, delta = 5000, 64, 0.01
        scheme = scheme_for(distinct, rows, delta, seed=3)
        by_row = {}
        collisions = 0
        for i in range(distinct):
            row = hash_range(i, rows, seed=99)
            fp = scheme.of(i)
            bucket = by_row.setdefault(row, set())
            if fp in bucket:
                collisions += 1
            bucket.add(fp)
        assert collisions == 0


class TestRequiredBitsSimple:
    def test_matches_theorem5_formula(self):
        m, w, delta = 1_000_000, 8, 1e-4
        assert required_bits_simple(m, w, delta) == math.ceil(
            math.log2(w * m / delta)
        )

    def test_invalid_args(self):
        with pytest.raises(ConfigurationError):
            required_bits_simple(0, 2, 0.1)
        with pytest.raises(ConfigurationError):
            required_bits_simple(10, 2, 0.0)

    def test_depends_on_stream_length(self):
        assert required_bits_simple(10**9, 2, 1e-4) > required_bits_simple(
            10**3, 2, 1e-4
        )


class TestSchemeFor:
    def test_caps_at_64_bits(self):
        scheme = scheme_for(10**12, 10, 1e-9)
        assert scheme.bits == 64

    def test_reasonable_width_for_paper_scale(self):
        scheme = scheme_for(1_000_000, 4096, 1e-4)
        assert 20 <= scheme.bits <= 64
