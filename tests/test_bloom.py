"""Tests for Bloom filters (repro.sketches.bloom)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.sketches.bloom import BloomFilter, RegisterBloomFilter


class TestBloomFilter:
    def test_added_value_is_member(self):
        bf = BloomFilter(1024, hashes=3)
        bf.add("cheetah")
        assert "cheetah" in bf

    def test_no_false_negatives_bulk(self):
        bf = BloomFilter(1 << 16, hashes=3)
        bf.update(range(2000))
        assert all(i in bf for i in range(2000))

    def test_empty_filter_has_no_members(self):
        bf = BloomFilter(1024)
        assert all(i not in bf for i in range(100))

    def test_false_positive_rate_near_theory(self):
        bf = BloomFilter(1 << 14, hashes=3, seed=7)
        bf.update(range(1000))
        probes = 20_000
        fps = sum(1 for i in range(10_000_000, 10_000_000 + probes) if i in bf)
        theoretical = bf.false_positive_rate()
        assert fps / probes < theoretical * 2 + 0.01

    def test_clear_removes_everything(self):
        bf = BloomFilter(1024)
        bf.update(range(50))
        bf.clear()
        assert bf.inserted == 0
        assert all(i not in bf for i in range(50))

    def test_fill_ratio_grows_with_inserts(self):
        bf = BloomFilter(4096, hashes=3)
        before = bf.fill_ratio()
        bf.update(range(200))
        assert bf.fill_ratio() > before

    def test_inserted_counts_duplicates(self):
        bf = BloomFilter(1024)
        bf.add("x")
        bf.add("x")
        assert bf.inserted == 2

    def test_bits_for_sizing(self):
        bits = BloomFilter.bits_for(10_000, 0.01)
        bf = BloomFilter(bits, hashes=7, seed=3)
        bf.update(range(10_000))
        assert bf.false_positive_rate() < 0.02

    def test_bits_for_rejects_bad_args(self):
        with pytest.raises(ConfigurationError):
            BloomFilter.bits_for(0, 0.01)
        with pytest.raises(ConfigurationError):
            BloomFilter.bits_for(100, 1.5)

    def test_invalid_size_raises(self):
        with pytest.raises(ConfigurationError):
            BloomFilter(0)

    def test_invalid_hash_count_raises(self):
        with pytest.raises(ConfigurationError):
            BloomFilter(128, hashes=0)

    def test_seed_changes_layout(self):
        a = BloomFilter(1 << 12, seed=1)
        b = BloomFilter(1 << 12, seed=2)
        a.add("v")
        b.add("v")
        assert a._words != b._words  # different bit layout


class TestRegisterBloomFilter:
    def test_added_value_is_member(self):
        rbf = RegisterBloomFilter(1 << 12, hashes=3)
        rbf.add(12345)
        assert 12345 in rbf

    def test_no_false_negatives_bulk(self):
        rbf = RegisterBloomFilter(1 << 16, hashes=3)
        rbf.update(range(2000))
        assert all(i in rbf for i in range(2000))

    def test_false_positive_rate_reasonable(self):
        # RBF trades a slightly higher FP rate for a one-stage lookup.
        rbf = RegisterBloomFilter(1 << 16, hashes=3, seed=11)
        rbf.update(range(1000))
        probes = 20_000
        fps = sum(1 for i in range(5_000_000, 5_000_000 + probes) if i in rbf)
        assert fps / probes < 0.05

    def test_minimum_size_enforced(self):
        with pytest.raises(ConfigurationError):
            RegisterBloomFilter(32)

    def test_hash_count_bounds(self):
        with pytest.raises(ConfigurationError):
            RegisterBloomFilter(1024, hashes=0)
        with pytest.raises(ConfigurationError):
            RegisterBloomFilter(1024, hashes=65)

    def test_size_rounds_down_to_words(self):
        rbf = RegisterBloomFilter(100)  # not a multiple of 64
        assert rbf.size_bits == 64

    def test_clear(self):
        rbf = RegisterBloomFilter(1 << 12)
        rbf.update(range(100))
        rbf.clear()
        assert rbf.inserted == 0
        assert all(i not in rbf for i in range(100))

    def test_mask_has_at_most_h_bits(self):
        rbf = RegisterBloomFilter(1 << 12, hashes=5)
        for i in range(100):
            assert 1 <= bin(rbf._mask(i)).count("1") <= 5

    def test_many_hashes_supported(self):
        rbf = RegisterBloomFilter(1 << 12, hashes=20)
        rbf.add("wide")
        assert "wide" in rbf

    def test_fill_ratio_bounded(self):
        rbf = RegisterBloomFilter(1 << 14, hashes=3)
        rbf.update(range(500))
        assert 0.0 < rbf.fill_ratio() < 1.0
