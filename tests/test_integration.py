"""Cross-module integration tests: full workloads, packing, end-to-end paths."""

from __future__ import annotations

import pytest

from repro.engine.cluster import Cluster, ClusterConfig
from repro.engine.cost import CostModel
from repro.engine.expressions import col
from repro.engine.plan import GroupByOp, Query
from repro.engine.reference import run_reference
from repro.net.reliability import ReliableTransfer, packets_for
from repro.switch.compiler import (
    footprint_filtering,
    footprint_groupby,
    footprint_reliability,
    pack,
)
from repro.switch.resources import TOFINO
from repro.workloads import bigdata, tpch


@pytest.fixture(scope="module")
def tables():
    scale = bigdata.BigDataScale(
        rankings_rows=4000,
        uservisits_rows=8000,
        distinct_urls=1500,
        distinct_user_agents=120,
        distinct_languages=15,
    )
    return bigdata.tables(scale, seed=11)


class TestBigDataEndToEnd:
    def test_all_seven_queries_verified(self, tables):
        cluster = Cluster(workers=5)
        queries = bigdata.benchmark_queries()
        queries["Q7-having"] = bigdata.query7_having(threshold=4000.0)
        for name, query in queries.items():
            run_tables = dict(tables)
            if name == "Q3-skyline":
                run_tables["Rankings"] = bigdata.permuted(run_tables["Rankings"])
            cluster.run_verified(query, run_tables)

    def test_bigdata_a_plus_b_combined(self, tables):
        # §6: filter (A) packs beside group-by (B); pruning stays correct.
        cluster = Cluster(workers=5)
        a = bigdata.query1_filter_count()
        b = bigdata.query5_groupby()
        result_a = cluster.run_verified(a, tables)
        result_b = cluster.run_verified(b, tables)
        combined_fp = pack(
            [footprint_filtering(1), footprint_groupby(cols=8, rows=4096)], TOFINO
        )
        assert combined_fp.fits(TOFINO)
        assert result_a.output == run_reference(a, tables)
        assert result_b.output == run_reference(b, tables)

    def test_filtered_groupby_single_query(self, tables):
        # A WHERE + GROUP BY in one query: the §6 packed pipeline shape.
        cluster = Cluster(workers=5)
        query = Query(
            GroupByOp("UserVisits", "userAgent", "adRevenue", "max"),
            where=col("duration") > 600,
        )
        result = cluster.run_verified(query, tables)
        assert result.output == run_reference(query, tables)

    def test_cheetah_speedup_shape_vs_spark(self, tables):
        # Fig. 5's qualitative claims on real (scaled) volumes.
        cluster = Cluster(workers=5)
        model = CostModel()
        groupby = cluster.run(bigdata.query5_groupby(), tables)
        filtering = cluster.run(bigdata.query1_filter_count(), tables)
        assert model.speedup(groupby, first_run=True) > model.speedup(
            filtering, first_run=True
        )
        assert model.speedup(groupby, first_run=False) > 1.0


class TestTpchEndToEnd:
    def test_q3_pipeline(self):
        base = tpch.tables(tpch.TpchScale(customers=500), seed=3)
        filtered = tpch.q3_filtered_tables(base)
        cluster = Cluster(workers=2)
        join_result = cluster.run_verified(tpch.q3_join_query(), filtered)
        # The master finishes Q3: revenue per order key, top 10.
        joined_keys = {int(k): v for k, v in join_result.output.items()}
        ranked = tpch.q3_revenue_topn(joined_keys, filtered["lineitem"], n=10)
        assert len(ranked) <= 10
        assert join_result.pruning_rate > 0.0

    def test_q3_join_beats_spark_in_model(self):
        base = tpch.tables(tpch.TpchScale(customers=500), seed=3)
        filtered = tpch.q3_filtered_tables(base)
        result = Cluster(workers=2).run(tpch.q3_join_query(), filtered)
        assert CostModel().speedup(result, first_run=True) > 1.0


class TestReliabilityIntegration:
    def test_groupby_stream_over_lossy_network(self, tables):
        # Stream a (key, value) workload through the reliability protocol
        # with the GROUP BY pruner and verify the completed query.
        from repro.core.groupby import GroupByPruner, master_groupby

        visits = tables["UserVisits"].head(400)
        entries = [
            (int(k), int(v))
            for k, v in zip(
                visits["userAgent"].tolist(), visits["adRevenue"].tolist()
            )
        ]
        pruner = GroupByPruner(rows=64, cols=4)
        transfer = ReliableTransfer(
            pruner,
            decode_entry=lambda p: (p.values[0], p.values[1]),
            loss=0.2,
            seed=5,
        )
        transfer.run(packets_for(entries))
        delivered = [(k, float(v)) for k, v in transfer.master_unique_entries]
        expected = master_groupby([(k, float(v)) for k, v in entries], "max")
        assert master_groupby(delivered, "max") == expected

    def test_reliability_stages_fit_alongside_query(self):
        combined = pack(
            [footprint_reliability(), footprint_groupby(cols=8, rows=4096)],
            TOFINO,
            strategy="serial",
        )
        assert combined.fits(TOFINO)


class TestMultiQueryPacking:
    def test_interactive_query_set_fits(self):
        # §6: DISTINCT + TOP N + JOIN packed concurrently for interactive
        # use without switch recompilation.
        from repro.switch.compiler import (
            footprint_distinct,
            footprint_join,
            footprint_topn_rand,
        )

        combined = pack(
            [
                footprint_distinct(cols=2, rows=4096),
                footprint_topn_rand(cols=4, rows=2048),
                footprint_join(memory_bits=8 * 1024 * 1024, hashes=3),
            ],
            TOFINO,
        )
        assert combined.fits(TOFINO)

    def test_resource_heavy_set_rejected(self):
        from repro.errors import ResourceError
        from repro.switch.compiler import footprint_skyline

        # Many SKYLINE instances exceed the stage budget when serialized.
        with pytest.raises(ResourceError):
            pack(
                [footprint_skyline(points=10)] * 3,
                TOFINO,
                strategy="serial",
            )


class TestDataScaleTrends:
    """Fig. 11's directional claims on prefix-scaled streams."""

    def test_distinct_pruning_improves_with_scale(self, tables):
        from repro.core.distinct import DistinctPruner

        agents = tables["UserVisits"]["userAgent"].tolist()
        rates = []
        for fraction in (0.25, 1.0):
            prefix = agents[: int(len(agents) * fraction)]
            pruner = DistinctPruner(rows=512, cols=2)
            pruner.survivors(prefix)
            rates.append(pruner.stats.pruning_rate)
        assert rates[1] > rates[0]

    def test_join_pruning_degrades_with_scale(self):
        from repro.core.base import PruneDecision
        from repro.core.join import JoinPruner
        from repro.workloads.synthetic import overlapping_key_sets

        rates = []
        for size in (2000, 20_000):
            left, right = overlapping_key_sets(size, size, overlap=0.1, seed=9)
            pruner = JoinPruner("L", "R", memory_bits=1 << 14)
            pruner.build(left, right)
            survived = sum(
                1
                for side, keys in (("L", left), ("R", right))
                for k in keys
                if pruner.process((side, k)) is PruneDecision.FORWARD
            )
            rates.append(1 - survived / (2 * size))
        assert rates[0] > rates[1]  # more data -> more BF false positives
