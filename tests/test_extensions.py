"""Tests for the §9 extensions (repro.extensions)."""

from __future__ import annotations

import pytest

from repro.core.base import PruneDecision
from repro.core.distinct import DistinctPruner, master_distinct
from repro.core.groupby import GroupByPruner, master_groupby
from repro.core.topn import TopNRandomizedPruner, master_topn
from repro.errors import ConfigurationError, ResourceError
from repro.extensions.dag import EdgePruning, WorkerDag
from repro.extensions.multientry import MultiEntryPruner
from repro.extensions.multiswitch import SwitchTree
from repro.switch.resources import MINI, TOFINO
from repro.workloads.synthetic import keyed_values, random_order_stream


class TestMultiEntryPruner:
    def _adapter(self, k=4, rows=64):
        pruner = DistinctPruner(rows=rows, cols=2)
        return MultiEntryPruner(
            pruner, row_of=pruner._matrix.row_of, entries_per_packet=k
        )

    def test_distinct_contract_preserved(self):
        stream = random_order_stream(5000, 400, seed=2)
        adapter = self._adapter(k=4)
        survivors = adapter.prune_stream(stream)
        assert set(master_distinct(survivors)) == set(stream)

    def test_row_mates_forwarded_unprocessed(self):
        pruner = DistinctPruner(rows=1, cols=2)  # everything shares row 0
        adapter = MultiEntryPruner(
            pruner, row_of=pruner._matrix.row_of, entries_per_packet=3
        )
        decisions = adapter.process_packet(["a", "a", "a"])
        # First processed (forward, new); the other two are unprocessed
        # row-mates - forwarded even though they are duplicates.
        assert decisions == [PruneDecision.FORWARD] * 3
        assert adapter.unprocessed_forwards == 2

    def test_duplicate_in_next_packet_still_pruned(self):
        pruner = DistinctPruner(rows=1, cols=2)
        adapter = MultiEntryPruner(
            pruner, row_of=pruner._matrix.row_of, entries_per_packet=2
        )
        adapter.process_packet(["a"])
        decisions = adapter.process_packet(["a"])
        assert decisions == [PruneDecision.PRUNE]

    def test_packing_reduces_frames(self):
        adapter = self._adapter(k=4)
        assert adapter.packets_sent(1000) == 250
        assert adapter.packets_sent(1001) == 251

    def test_oversized_packet_rejected(self):
        adapter = self._adapter(k=2)
        with pytest.raises(ConfigurationError):
            adapter.process_packet([1, 2, 3])

    def test_k_bounded_by_alus(self):
        pruner = DistinctPruner(rows=8, cols=2)
        with pytest.raises(ConfigurationError):
            MultiEntryPruner(
                pruner,
                row_of=pruner._matrix.row_of,
                entries_per_packet=11,
                alus_per_stage=10,
            )

    def test_footprint_multiplies_alus(self):
        adapter = self._adapter(k=4)
        base = adapter.pruner.footprint()
        packed = adapter.footprint()
        assert packed.alus == base.alus * 4
        assert packed.stages == base.stages
        assert packed.sram_bits == base.sram_bits

    def test_topn_contract_with_packing(self):
        import random

        rng = random.Random(5)
        stream = [rng.uniform(0, 1000) for _ in range(4000)]
        pruner = TopNRandomizedPruner(n=30, rows=64, cols=4, seed=3)
        adapter = MultiEntryPruner(
            pruner,
            row_of=lambda entry: pruner._rng.randrange(pruner.rows),
            entries_per_packet=4,
        )
        survivors = adapter.prune_stream(stream)
        assert sorted(master_topn(survivors, 30)) == sorted(master_topn(stream, 30))

    def test_groupby_contract_with_packing(self):
        stream = keyed_values(4000, 100, seed=7)
        pruner = GroupByPruner(rows=64, cols=4)
        adapter = MultiEntryPruner(
            pruner,
            row_of=lambda entry: pruner._matrix.row_of(entry[0]),
            entries_per_packet=4,
        )
        survivors = adapter.prune_stream(stream)
        expected = master_groupby(list(stream), "max")
        assert master_groupby(survivors, "max") == expected

    def test_reset(self):
        adapter = self._adapter()
        adapter.process_packet(["x"])
        adapter.reset()
        assert adapter.stats.processed == 0
        assert adapter.process_packet(["x"]) == [PruneDecision.FORWARD]


class TestSwitchTree:
    def test_distinct_contract(self):
        stream = random_order_stream(5000, 400, seed=3)
        tree = SwitchTree(
            leaves=[DistinctPruner(rows=64, cols=2, seed=i) for i in range(4)],
            root=DistinctPruner(rows=256, cols=2, seed=99),
        )
        survivors = tree.survivors(stream)
        assert set(master_distinct(survivors)) == set(stream)

    def test_tree_prunes_more_than_single_leaf(self):
        stream = random_order_stream(20_000, 2000, seed=5)
        single = DistinctPruner(rows=64, cols=2, seed=1)
        single_survivors = len(single.survivors(stream))
        tree = SwitchTree(
            leaves=[DistinctPruner(rows=64, cols=2, seed=i) for i in range(4)],
            root=DistinctPruner(rows=64, cols=2, seed=99),
        )
        tree_survivors = len(tree.survivors(list(stream)))
        assert tree_survivors < single_survivors

    def test_levels_both_contribute(self):
        stream = random_order_stream(10_000, 500, seed=7)
        tree = SwitchTree(
            leaves=[DistinctPruner(rows=16, cols=2, seed=i) for i in range(2)],
            root=DistinctPruner(rows=512, cols=2, seed=99),
        )
        tree.survivors(stream)
        assert tree.leaf_pruned > 0
        assert tree.root_pruned > 0

    def test_total_state_cells_aggregates(self):
        tree = SwitchTree(
            leaves=[DistinctPruner(rows=64, cols=2) for _ in range(3)],
            root=DistinctPruner(rows=64, cols=2),
        )
        assert tree.total_state_cells == 4 * 64 * 2 * 64

    def test_empty_leaves_rejected(self):
        with pytest.raises(ConfigurationError):
            SwitchTree(leaves=[], root=DistinctPruner())

    def test_bad_partition_function_rejected(self):
        tree = SwitchTree(
            leaves=[DistinctPruner(rows=8, cols=2)],
            root=DistinctPruner(rows=8, cols=2),
            partition=lambda entry: 5,
        )
        with pytest.raises(ConfigurationError):
            tree.process("x")

    def test_reset(self):
        tree = SwitchTree(
            leaves=[DistinctPruner(rows=8, cols=2)],
            root=DistinctPruner(rows=8, cols=2),
        )
        tree.process("x")
        tree.reset()
        assert tree.stats.processed == 0
        assert tree.process("x") is PruneDecision.FORWARD


class TestWorkerDag:
    def test_two_level_distinct_then_groupby(self):
        stream = keyed_values(5000, 200, seed=9)
        # Edge 1 prunes per-key non-improving values; edge 2 dedupes keys
        # after a projection to the key alone.
        groupby = GroupByPruner(rows=256, cols=4)
        distinct = DistinctPruner(rows=256, cols=2)
        dag = WorkerDag(
            [
                EdgePruning("agg-edge", groupby),
                EdgePruning(
                    "dedup-edge", distinct, transform=None
                ),
            ]
        )
        # For the second edge, entries are (key, value) tuples; DISTINCT
        # on full tuples is still superset-safe for the final GROUP BY.
        output, reports = dag.run(stream)
        assert master_groupby(output, "max") == master_groupby(list(stream), "max")
        assert reports[0].arrived == len(stream)
        assert reports[1].arrived == reports[0].emitted

    def test_transform_projects_entries(self):
        stream = keyed_values(2000, 50, seed=11)
        dag = WorkerDag(
            [
                EdgePruning(
                    "edge",
                    GroupByPruner(rows=64, cols=4),
                    transform=lambda entry: entry[0],
                )
            ]
        )
        output, _ = dag.run(stream)
        assert set(output) == {key for key, _ in stream}

    def test_transform_can_drop(self):
        dag = WorkerDag(
            [
                EdgePruning(
                    "edge",
                    DistinctPruner(rows=16, cols=2),
                    transform=lambda entry: entry if entry % 2 == 0 else None,
                )
            ]
        )
        output, reports = dag.run([1, 2, 3, 4])
        assert output == [2, 4]

    def test_validate_packs_edges(self):
        dag = WorkerDag(
            [
                EdgePruning("a", DistinctPruner(rows=256, cols=2)),
                EdgePruning("b", GroupByPruner(rows=256, cols=4)),
            ],
            model=TOFINO,
        )
        footprint = dag.validate()
        assert footprint.fits(TOFINO)

    def test_validate_rejects_overcommit(self):
        from repro.core.join import JoinPruner

        dag = WorkerDag(
            [
                EdgePruning("a", JoinPruner("L", "R")),
                EdgePruning("b", JoinPruner("X", "Y")),
            ],
            model=MINI,
        )
        with pytest.raises(ResourceError):
            dag.validate()

    def test_duplicate_edge_names_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkerDag(
                [
                    EdgePruning("e", DistinctPruner(rows=8, cols=2)),
                    EdgePruning("e", DistinctPruner(rows=8, cols=2)),
                ]
            )

    def test_empty_dag_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkerDag([])

    def test_reset(self):
        pruner = DistinctPruner(rows=8, cols=2)
        dag = WorkerDag([EdgePruning("e", pruner)])
        dag.run([1, 1, 2])
        dag.reset()
        assert pruner.stats.processed == 0
