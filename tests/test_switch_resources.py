"""Tests for the resource model and footprints (repro.switch.resources)."""

from __future__ import annotations

import pytest

from repro.errors import ResourceError
from repro.switch.resources import (
    MB,
    MINI,
    TOFINO,
    TOFINO2,
    ResourceFootprint,
    ResourceModel,
)


class TestResourceModel:
    def test_default_profile_totals(self):
        assert TOFINO.total_sram_bits == TOFINO.stages * TOFINO.sram_bits_per_stage
        assert TOFINO.total_alus == TOFINO.stages * TOFINO.alus_per_stage

    def test_tofino2_is_larger(self):
        assert TOFINO2.sram_bits_per_stage > TOFINO.sram_bits_per_stage
        assert TOFINO2.tcam_entries > TOFINO.tcam_entries

    def test_mini_is_tiny(self):
        assert MINI.stages < TOFINO.stages
        assert MINI.total_sram_bits < TOFINO.total_sram_bits


class TestFootprintFits:
    def test_empty_footprint_fits_everything(self):
        ResourceFootprint().check_fits(MINI)

    def test_too_many_stages(self):
        fp = ResourceFootprint(stages=MINI.stages + 1, label="X")
        with pytest.raises(ResourceError, match="stages"):
            fp.check_fits(MINI)

    def test_too_much_total_sram(self):
        fp = ResourceFootprint(stages=1, sram_bits=MINI.total_sram_bits + 1)
        with pytest.raises(ResourceError, match="SRAM"):
            fp.check_fits(MINI)

    def test_per_stage_sram_overflow(self):
        fp = ResourceFootprint(
            stages=2,
            sram_bits=MINI.sram_bits_per_stage + 1,
            stage_sram_bits={0: MINI.sram_bits_per_stage + 1},
        )
        with pytest.raises(ResourceError, match="stage 0"):
            fp.check_fits(MINI)

    def test_too_many_alus_per_stage(self):
        fp = ResourceFootprint(stages=1, alus=MINI.alus_per_stage + 1)
        with pytest.raises(ResourceError, match="ALU"):
            fp.check_fits(MINI)

    def test_tcam_overflow(self):
        fp = ResourceFootprint(tcam_entries=MINI.tcam_entries + 1)
        with pytest.raises(ResourceError, match="TCAM"):
            fp.check_fits(MINI)

    def test_phv_overflow(self):
        fp = ResourceFootprint(phv_bits=MINI.phv_bits + 1)
        with pytest.raises(ResourceError, match="PHV"):
            fp.check_fits(MINI)

    def test_fits_returns_bool(self):
        assert ResourceFootprint().fits(MINI)
        assert not ResourceFootprint(stages=100).fits(MINI)

    def test_error_message_names_program(self):
        fp = ResourceFootprint(stages=100, label="DISTINCT-LRU")
        with pytest.raises(ResourceError, match="DISTINCT-LRU"):
            fp.check_fits(TOFINO)


class TestFootprintMerging:
    def test_serial_adds_stages(self):
        a = ResourceFootprint(stages=3, alus=3, sram_bits=10, label="A")
        b = ResourceFootprint(stages=2, alus=2, sram_bits=20, label="B")
        merged = a.merged_serial(b)
        assert merged.stages == 5
        assert merged.alus == 5
        assert merged.sram_bits == 30

    def test_serial_offsets_stage_map(self):
        a = ResourceFootprint(stages=2, stage_sram_bits={0: 5, 1: 5})
        b = ResourceFootprint(stages=1, stage_sram_bits={0: 7})
        merged = a.merged_serial(b)
        assert merged.stage_sram_bits == {0: 5, 1: 5, 2: 7}

    def test_parallel_takes_max_stages(self):
        a = ResourceFootprint(stages=3, alus=3)
        b = ResourceFootprint(stages=5, alus=2)
        merged = a.merged_parallel(b)
        assert merged.stages == 5
        assert merged.alus == 5

    def test_parallel_sums_per_stage_sram(self):
        a = ResourceFootprint(stages=1, stage_sram_bits={0: 5})
        b = ResourceFootprint(stages=1, stage_sram_bits={0: 7})
        assert a.merged_parallel(b).stage_sram_bits == {0: 12}

    def test_parallel_sums_phv(self):
        a = ResourceFootprint(phv_bits=100)
        b = ResourceFootprint(phv_bits=200)
        assert a.merged_parallel(b).phv_bits == 300

    def test_serial_takes_max_phv(self):
        a = ResourceFootprint(phv_bits=100)
        b = ResourceFootprint(phv_bits=200)
        assert a.merged_serial(b).phv_bits == 200

    def test_labels_combine(self):
        a = ResourceFootprint(label="A")
        b = ResourceFootprint(label="B")
        assert a.merged_serial(b).label == "A+B"
        assert a.merged_parallel(b).label == "A|B"
