"""Second wave of property-based tests: programs, extensions, services, SQL."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.base import PruneDecision
from repro.core.distinct import DistinctPruner, master_distinct
from repro.core.join import OuterJoinPruner, master_outer_join
from repro.core.topn import master_topn
from repro.extensions.multientry import MultiEntryPruner
from repro.extensions.multiswitch import SwitchTree
from repro.net.services import ValueCodec
from repro.switch.pipeline import Pipeline
from repro.switch.programs import PipelineDistinct, PipelineTopNDeterministic
from repro.switch.resources import ResourceModel

_SETTINGS = settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def _pipeline(stages=8):
    return Pipeline(
        ResourceModel(
            stages=stages,
            alus_per_stage=4,
            sram_bits_per_stage=256 * 1024 * 8,
            tcam_entries=64,
            phv_bits=512,
        )
    )


class TestPipelineProgramProperties:
    @_SETTINGS
    @given(
        stream=st.lists(st.integers(0, 60), max_size=200),
        rows=st.integers(1, 32),
        cols=st.integers(1, 4),
    )
    def test_pipeline_distinct_matches_sketch_lru(self, stream, rows, cols):
        program = PipelineDistinct(_pipeline(), rows=rows, cols=cols, seed=5)
        sketch = DistinctPruner(rows=rows, cols=cols, policy="lru", seed=5)
        for value in stream:
            assert program.process(value) == (
                sketch.process(value) is PruneDecision.FORWARD
            )

    @_SETTINGS
    @given(
        stream=st.lists(st.integers(0, 100_000), max_size=200),
        n=st.integers(1, 20),
        thresholds=st.integers(1, 5),
    )
    def test_pipeline_topn_contract(self, stream, n, thresholds):
        program = PipelineTopNDeterministic(_pipeline(), n=n, thresholds=thresholds)
        survivors = program.survivors(stream)
        assert sorted(master_topn(survivors, n)) == sorted(master_topn(stream, n))


class TestExtensionProperties:
    @_SETTINGS
    @given(
        stream=st.lists(st.integers(0, 50), max_size=240),
        k=st.integers(1, 8),
        rows=st.integers(1, 16),
    )
    def test_multientry_distinct_contract(self, stream, k, rows):
        pruner = DistinctPruner(rows=rows, cols=2, seed=3)
        adapter = MultiEntryPruner(
            pruner, row_of=pruner._matrix.row_of, entries_per_packet=k
        )
        survivors = adapter.prune_stream(stream)
        assert set(master_distinct(survivors)) == set(stream)

    @_SETTINGS
    @given(
        stream=st.lists(st.integers(0, 80), max_size=240),
        leaves=st.integers(1, 5),
    )
    def test_switch_tree_distinct_contract(self, stream, leaves):
        tree = SwitchTree(
            leaves=[DistinctPruner(rows=8, cols=2, seed=i) for i in range(leaves)],
            root=DistinctPruner(rows=16, cols=2, seed=77),
        )
        survivors = tree.survivors(stream)
        assert set(master_distinct(survivors)) == set(stream)

    @_SETTINGS
    @given(
        left=st.lists(st.integers(0, 40), max_size=120),
        right=st.lists(st.integers(0, 40), max_size=120),
        preserved=st.sampled_from(["left", "right"]),
        memory=st.sampled_from([256, 4096]),
    )
    def test_outer_join_contract(self, left, right, preserved, memory):
        pruner = OuterJoinPruner(
            left="A", right="B", preserved=preserved, memory_bits=memory
        )
        pruner.build(left, right)
        left_surv = [
            k for k in left if pruner.process(("A", k)) is PruneDecision.FORWARD
        ]
        right_surv = [
            k for k in right if pruner.process(("B", k)) is PruneDecision.FORWARD
        ]
        got = master_outer_join(
            [(k, k) for k in left_surv],
            [(k, k) for k in right_surv],
            preserved=preserved,
        )
        expected = master_outer_join(
            [(k, k) for k in left], [(k, k) for k in right], preserved=preserved
        )
        assert sorted(got, key=repr) == sorted(expected, key=repr)


class TestCodecProperties:
    @_SETTINGS
    @given(value=st.integers(-(1 << 62), 1 << 62))
    def test_int_identity(self, value):
        assert ValueCodec().encode(value) == value

    @_SETTINGS
    @given(value=st.floats(0.0, 1e12, allow_nan=False))
    def test_float_encoding_is_one_sided(self, value):
        codec = ValueCodec(float_scale=1000)
        decoded = codec.decode_float(codec.encode(value))
        assert decoded >= value
        # One quantum of quantization plus float-division rounding slack.
        assert decoded - value <= 0.001 + abs(value) * 1e-12

    @_SETTINGS
    @given(text=st.text(max_size=50))
    def test_string_encoding_deterministic_and_in_range(self, text):
        codec = ValueCodec()
        word = codec.encode(text)
        assert word == codec.encode(text)
        assert -(1 << 63) <= word <= (1 << 63) - 1


class TestSqlRoundTripProperties:
    comparison = st.tuples(
        st.sampled_from(["a", "b", "c"]),
        st.sampled_from([">", ">=", "<", "<=", "=", "!="]),
        st.integers(-100, 100),
    )

    @_SETTINGS
    @given(
        terms=st.lists(comparison, min_size=1, max_size=4),
        connective=st.sampled_from(["AND", "OR"]),
    )
    def test_parsed_predicate_matches_semantics(self, terms, connective):
        from repro.engine.sql import parse_predicate

        sql = f" {connective} ".join(f"{c} {op} {lit}" for c, op, lit in terms)
        expr = parse_predicate(sql)
        columns = ["a", "b", "c"]
        formula = expr.to_formula(columns)
        ops = {
            ">": lambda x, y: x > y,
            ">=": lambda x, y: x >= y,
            "<": lambda x, y: x < y,
            "<=": lambda x, y: x <= y,
            "=": lambda x, y: x == y,
            "!=": lambda x, y: x != y,
        }
        for entry in [(-100, 0, 100), (0, 0, 0), (50, -50, 5)]:
            env = dict(zip(columns, entry))
            values = [ops[op](env[c], lit) for c, op, lit in terms]
            expected = all(values) if connective == "AND" else any(values)
            assert formula.evaluate(entry) == expected
