"""The table-resident shared-memory dataplane.

Load-bearing contracts:

* **Exactness** — every operator at every parallelism produces the same
  output with residency on as the per-run export path (both verified
  against the reference executor), including reset-and-reuse of warm
  pruner templates across repeated runs.
* **Version fencing** — ``update_tables`` fences out stale resident
  views by object identity: no run can mix columns from two table
  versions, even with concurrent swaps hammering a verifying service.
* **No leaks** — retiring a store (service drain, cluster release)
  unlinks every ``/dev/shm`` segment, even while in-flight runs still
  hold leases or views.
"""

from __future__ import annotations

import os
import threading

import numpy as np
import pytest

from repro.engine.cluster import Cluster, ClusterConfig
from repro.engine.expressions import col
from repro.engine.plan import (
    DistinctOp,
    FilterOp,
    GroupByOp,
    HavingOp,
    JoinOp,
    Query,
    SkylineOp,
    TopNOp,
)
from repro.engine.reference import run_reference
from repro.engine.table import Table
from repro.parallel.resident import ResidentTableStore
from repro.serve import QueryService

PARALLELISMS = (1, 2, 4)
BATCH = 128


def make_tables(seed: int) -> dict:
    rng = np.random.default_rng(seed)
    n = 900
    products = Table(
        "products",
        {
            "price": rng.integers(0, 400, n),
            "qty": rng.integers(0, 50, n),
            "cat": rng.integers(0, 30, n),
        },
    )
    ratings = Table("ratings", {"cat": rng.integers(0, 40, n // 2)})
    return {"products": products, "ratings": ratings}


def make_query(op_name: str) -> Query:
    return {
        "filter": Query(FilterOp("products", col("price") > 250)),
        "distinct": Query(DistinctOp("products", ["cat"])),
        "topn": Query(TopNOp("products", "price", 12)),
        "groupby": Query(GroupByOp("products", "cat", "price", "max")),
        "having": Query(
            HavingOp("products", "cat", "price", threshold=5000.0, aggregate="sum")
        ),
        "join": Query(JoinOp("products", "ratings", "cat", "cat")),
        "skyline": Query(SkylineOp("products", ["price", "qty"])),
    }[op_name]


def resident_cluster(parallelism: int, **overrides) -> Cluster:
    return Cluster(
        workers=5,
        config=ClusterConfig(
            batch_size=BATCH,
            parallelism=parallelism,
            resident=True,
            **overrides,
        ),
    )


def segments_exist(names) -> list:
    return [name for name in names if os.path.exists(f"/dev/shm/{name}")]


class TestStoreLifecycle:
    def test_owns_is_object_identity(self):
        tables = make_tables(1)
        store = ResidentTableStore(tables)
        try:
            assert store.owns("products", tables["products"])
            clone = make_tables(1)["products"]  # equal values, new object
            assert not store.owns("products", clone)
            assert not store.owns("missing", tables["products"])
        finally:
            store.retire()

    def test_exports_once_and_counts_reuses(self):
        tables = make_tables(2)
        store = ResidentTableStore(tables)
        try:
            first = store.column_entries("products", ["price", "qty"])
            second = store.column_entries("products", ["price", "qty"])
            assert first == second
            stats = store.stats()
            assert stats["exports"] == 2
            assert stats["reuses"] == 2
            assert stats["segments"] == 2
            assert stats["resident_bytes"] > 0
        finally:
            store.retire()

    def test_retire_defers_close_until_leases_drain(self):
        tables = make_tables(3)
        store = ResidentTableStore(tables)
        store.column_entries("products", ["price"])
        names = store.segment_names()
        assert store.acquire()
        store.retire()
        assert store.retired
        assert not store.acquire()  # fenced out for new runs
        assert segments_exist(names)  # lease still held: pages stay named
        store.release()
        assert not segments_exist(names)

    def test_close_unlinks_everything_and_is_idempotent(self):
        tables = make_tables(4)
        store = ResidentTableStore(tables)
        store.column_entries("products", ["price", "qty"])
        names = store.segment_names()
        assert names
        store.close()
        assert not segments_exist(names)
        assert store.retired
        store.close()  # idempotent: a double-close must not raise
        assert not store.acquire()

    def test_lease_held_view_survives_a_concurrent_retire(self):
        """The race the lease protocol exists for: a run projects a view,
        a table swap retires the store mid-read.  The close is deferred
        until the lease drains, so the view stays readable throughout."""
        tables = make_tables(4)
        store = ResidentTableStore(tables)
        assert store.acquire()
        view = store.view("products", "price")
        expected = view.sum()
        names = store.segment_names()
        store.retire()  # concurrent swap lands mid-run
        assert view.sum() == expected  # lease defers unmap: still readable
        assert segments_exist(names)
        store.release()  # run drains -> close fires
        assert not segments_exist(names)

    def test_project_is_zero_copy_and_equal(self):
        tables = make_tables(5)
        store = ResidentTableStore(tables)
        try:
            projection = store.project("products", ["price", "cat"])
            for name in ("price", "cat"):
                assert np.array_equal(
                    projection.column(name), tables["products"].column(name)
                )
                assert projection.column(name) is store.view("products", name)
        finally:
            store.retire()

    def test_plan_entries_shared_between_signatures(self):
        tables = make_tables(6)
        store = ResidentTableStore(tables)
        try:
            build_calls = [0]

            def build():
                build_calls[0] += 1
                return [np.arange(3, dtype=np.int64), np.arange(2, dtype=np.int64)]

            sig = ("column", "cat")
            first = store.plan_entries("products", sig, 2, build)
            second = store.plan_entries("products", sig, 2, build)
            assert build_calls[0] == 1
            assert first == second
        finally:
            store.retire()


class TestEquivalence:
    """Residency changes performance, never answers."""

    @pytest.mark.parametrize(
        "op_name",
        ["filter", "distinct", "topn", "groupby", "having", "join", "skyline"],
    )
    def test_all_operators_exact_at_every_parallelism(self, op_name):
        tables = make_tables(7)
        query = make_query(op_name)
        expected = run_reference(query, tables)
        for parallelism in PARALLELISMS:
            c = resident_cluster(parallelism)
            try:
                for _ in range(2):  # second run exercises reuse paths
                    assert c.run_verified(query, tables).output == expected
                store = c.resident
                assert store is not None and store.stats()["leases"] == 0
            finally:
                c.release_resident()

    def test_repeated_parallel_runs_reuse_pruner_templates(self):
        """Each pool process builds each shard's template at most once;
        with 2 processes and 2 shard configs that bounds builds at 4
        across any number of runs — everything past that is a reset-and-
        reuse, regardless of how the pool schedules tasks onto processes.
        """
        tables = make_tables(8)
        query = make_query("distinct")
        c = resident_cluster(2)
        runs = 4
        builds = reuses = 0
        try:
            for _ in range(runs):
                counters = c.run_verified(query, tables).metrics.counter_values()
                builds += counters.get("resident_pruner_builds_total{}", 0)
                reuses += counters.get("resident_pruner_reuses_total{}", 0)
            assert builds + reuses == 2 * runs  # every shard went resident
            assert builds <= 4  # processes (2) x shard template keys (2)
            assert reuses >= 2 * runs - 4
        finally:
            c.release_resident()

    def test_sequential_run_streams_resident_views(self):
        tables = make_tables(9)
        query = make_query("distinct")
        c = resident_cluster(1)
        try:
            expected = run_reference(query, tables)
            assert c.run_verified(query, tables).output == expected
            store = c.resident
            assert store is not None
            # The streamed columns were exported by the sequential pass.
            assert store.stats()["exports"] >= 1
        finally:
            c.release_resident()

    def test_packed_slot_streams_resident_views(self):
        tables = make_tables(10)
        queries = [
            Query(FilterOp("products", col("price") > 250)),
            Query(DistinctOp("products", ["cat"])),
            Query(TopNOp("products", "price", 12)),
        ]
        c = resident_cluster(1)
        try:
            packed = c.run_packed(queries, tables)
            for query, result in zip(queries, packed.results):
                assert result.output == run_reference(query, tables)
            assert c.resident is not None
            assert c.resident.stats()["exports"] >= 1
        finally:
            c.release_resident()

    def test_where_masked_table_falls_back_exactly(self):
        tables = make_tables(11)
        query = Query(
            GroupByOp("products", "cat", "price", "max"), where=col("qty") <= 25
        )
        for parallelism in (1, 2):
            c = resident_cluster(parallelism)
            try:
                assert c.run_verified(query, tables).output == run_reference(
                    query, tables
                )
            finally:
                c.release_resident()

    def test_no_shared_memory_degrades_to_per_run_path(self, monkeypatch):
        import repro.parallel.resident as resident_mod

        monkeypatch.setattr(resident_mod, "_shared_memory", None)
        tables = make_tables(12)
        query = make_query("filter")
        c = resident_cluster(2)
        try:
            assert c.run_verified(query, tables).output == run_reference(
                query, tables
            )
            assert c.resident is None
        finally:
            c.release_resident()

    def test_pool_respawn_reattaches_resident_segments(self):
        import repro.parallel.runner as runner

        tables = make_tables(13)
        query = make_query("distinct")
        expected = run_reference(query, tables)
        c = resident_cluster(2)
        try:
            assert c.run_verified(query, tables).output == expected
            runner._shutdown_pools()  # fresh processes, cold worker caches
            assert c.run_verified(query, tables).output == expected
        finally:
            c.release_resident()


def make_service_tables(seed: int) -> dict:
    return make_tables(seed)


SERVICE_QUERIES = [
    Query(FilterOp("products", col("price") > 250)),
    Query(DistinctOp("products", ["cat"])),
    Query(TopNOp("products", "price", 12)),
    Query(GroupByOp("products", "cat", "price", "max")),
]


class TestServiceResidency:
    def service(self, tables, parallelism: int = 2, **kwargs) -> QueryService:
        return QueryService(
            tables,
            workers=5,
            config=ClusterConfig(
                batch_size=BATCH, parallelism=parallelism, resident=True
            ),
            **kwargs,
        )

    def test_service_installs_versioned_store_and_answers_exactly(self):
        tables = make_service_tables(20)
        with self.service(tables) as service:
            store = service.cluster.resident
            assert store is not None and store.version == 0
            for query in SERVICE_QUERIES:
                assert service.query(query) == run_reference(query, tables)
            report = service.report()
            assert report["summary"]["resident"]["version"] == 0
            assert "shard_plan_cache" in report["summary"]

    def test_update_tables_fences_out_stale_residency(self):
        tables = make_service_tables(21)
        with self.service(tables) as service:
            query = SERVICE_QUERIES[1]
            assert service.query(query) == run_reference(query, tables)
            old_store = service.cluster.resident
            old_names = old_store.segment_names()
            swapped = make_service_tables(99)  # different data entirely
            version = service.update_tables(swapped)
            new_store = service.cluster.resident
            assert new_store is not old_store
            assert new_store.version == version
            assert old_store.retired
            assert not segments_exist(old_names)  # no leases were held
            for q in SERVICE_QUERIES:
                assert service.query(q) == run_reference(q, swapped)

    @pytest.mark.parametrize("parallelism", [1, 2])
    def test_concurrent_swaps_never_mix_versions(self, parallelism):
        """Hammer update_tables while a verifying service executes: the
        service re-checks every answer against the reference executor
        over the slot's own table snapshot, so any mixed-version read
        would fail the request."""
        tables = make_service_tables(22)
        with self.service(tables, parallelism=parallelism, verify=True) as service:
            stop = threading.Event()

            def swapper():
                seed = 50
                while not stop.is_set():
                    service.update_tables(make_service_tables(seed))
                    seed += 1

            thread = threading.Thread(target=swapper, daemon=True)
            thread.start()
            try:
                for round_ in range(6):
                    for query in SERVICE_QUERIES:
                        # verify=True raises inside the slot on any
                        # parity violation; reaching result() proves the
                        # answer matched the snapshot's reference.
                        service.query(query)
            finally:
                stop.set()
                thread.join()

    def test_swap_then_pool_respawn_stays_exact(self):
        import repro.parallel.runner as runner

        tables = make_service_tables(23)
        with self.service(tables) as service:
            query = SERVICE_QUERIES[0]
            assert service.query(query) == run_reference(query, tables)
            swapped = make_service_tables(77)
            service.update_tables(swapped)
            runner._shutdown_pools()  # respawn: cold worker caches
            for q in SERVICE_QUERIES:
                assert service.query(q) == run_reference(q, swapped)

    def test_drain_leaves_no_segments(self):
        tables = make_service_tables(24)
        service = self.service(tables)
        for query in SERVICE_QUERIES:
            service.query(query)
        store = service.cluster.resident
        names = store.segment_names()
        assert names, "residency never exported anything — test is vacuous"
        service.shutdown(drain=True)
        assert store.retired
        assert not segments_exist(names)
        assert service.cluster.resident is None
        report = service.report()
        assert report["summary"]["resident"]["exports"] >= len(names)
