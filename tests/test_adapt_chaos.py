"""Chaos-style exactness properties for the adaptive runtime.

The superset-safety argument (paper §4) says a remediation action can
only ever cost performance, never correctness: every pruner variant and
sizing forwards at least the entries the output needs.  This suite
hammers that claim — random sequences of remediation actions staged at
batch boundaries (the only place :class:`AdaptiveConfigStore` promotes
them) across DISTINCT, TOP N and GROUP BY, solo and packed, at
parallelism 1 and 2 — and requires bit-exact agreement with the
config-independent reference on every pass.
"""

from __future__ import annotations

import random
from dataclasses import replace

import numpy as np
import pytest

from repro.adapt import AdaptiveConfigStore
from repro.adapt.scenario import drift_tables, run_scenario
from repro.engine.cluster import Cluster, ClusterConfig
from repro.engine.plan import DistinctOp, GroupByOp, Query, TopNOp
from repro.engine.reference import run_reference
from repro.engine.table import Table

# ---------------------------------------------------------------------------
# Workload: one table, three stateful operators sharing it.

ROWS = 1200


def make_tables(rng: random.Random):
    """A seeded table with repeat-heavy columns for each pruner kind."""
    return {
        "T": Table(
            "T",
            {
                "v": np.array([rng.randrange(200) for _ in range(ROWS)]),
                "score": np.array([rng.random() * 1e4 for _ in range(ROWS)]),
                "k": np.array([rng.randrange(40) for _ in range(ROWS)]),
                "amount": np.array(
                    [rng.randrange(10_000) for _ in range(ROWS)]
                ),
            },
        )
    }


def make_queries():
    return [
        Query(DistinctOp("T", ("v",))),
        Query(TopNOp("T", "score", 10)),
        Query(GroupByOp("T", "k", "amount", "max")),
    ]


# Every remediation axis the planner can take, plus shrinks (the forced
# regression direction) and the revert-to-base sentinel.  All must be
# output-neutral.
MUTATIONS = [
    lambda c: replace(c, distinct_rows=c.distinct_rows * 2),
    lambda c: replace(c, distinct_rows=max(8, c.distinct_rows // 2)),
    lambda c: replace(
        c, distinct_policy="fifo" if c.distinct_policy == "lru" else "lru"
    ),
    lambda c: replace(c, topn_randomized=not c.topn_randomized),
    lambda c: replace(c, topn_rows=c.topn_rows * 2),
    lambda c: replace(c, groupby_rows=c.groupby_rows * 2),
    None,  # revert the signature to the base configuration
]


def base_config(parallelism: int) -> ClusterConfig:
    # Deliberately undersized sketches so pruners actually evict and the
    # variants behave differently — exactness must hold regardless.
    return ClusterConfig(
        distinct_rows=64,
        distinct_cols=2,
        topn_rows=64,
        groupby_rows=64,
        groupby_cols=4,
        parallelism=parallelism,
    )


# ---------------------------------------------------------------------------
# The property: any action sequence, applied at batch boundaries, keeps
# solo and packed outputs bit-exact vs the reference.


@pytest.mark.parametrize("parallelism", [1, 2])
@pytest.mark.parametrize("seed", range(5))
def test_remediation_actions_preserve_exactness(seed, parallelism):
    rng = random.Random(seed)
    tables = make_tables(rng)
    queries = make_queries()
    expected = {q.cache_key(): run_reference(q, tables) for q in queries}

    store = AdaptiveConfigStore(base_config(parallelism))
    cluster = Cluster(workers=2, config=base_config(parallelism))
    cluster.adaptive = store

    for _ in range(4):
        for query in queries:
            result = cluster.run(query, tables)
            assert result.output == expected[query.cache_key()]
        packed = cluster.run_packed(queries, tables)
        for query, result in zip(queries, packed.results):
            assert result.output == expected[query.cache_key()]
        # Stage the next "remediation" at the batch boundary: the
        # cluster is idle, so promotion is immediate.
        target = rng.choice(queries).cache_key()
        mutation = rng.choice(MUTATIONS)
        if mutation is None:
            store.stage(target, None)
        else:
            store.stage(target, mutation(store.effective(target)))


def test_stage_during_lease_keeps_pass_pinned_and_exact():
    """A pass keeps its leased config; the swap lands on the next pass."""
    rng = random.Random(99)
    tables = make_tables(rng)
    query = make_queries()[0]
    signature = query.cache_key()
    expected = run_reference(query, tables)

    store = AdaptiveConfigStore(base_config(parallelism=1))
    cluster = Cluster(workers=2, config=base_config(parallelism=1))
    cluster.adaptive = store

    lease = store.lease(signature)
    pinned = lease.__enter__()
    try:
        resized = replace(store.base_config, distinct_rows=512)
        store.stage(signature, resized)
        # The inflight lease fences the promotion off.
        assert store.active(signature) is None
        assert pinned is None
    finally:
        lease.__exit__(None, None, None)
    # Lease exit promoted the staged override; both sides stay exact.
    assert store.active(signature) == resized
    assert cluster.run(query, tables).output == expected


@pytest.mark.parametrize("parallelism", [1, 2])
def test_closed_loop_remediation_is_exact_end_to_end(parallelism):
    """The real loop — detectors, engine ticks, hot-swaps — stays exact.

    A small drift scenario (working set 64 → 512 over a 128-entry
    cache matrix) with per-run verification: at least one action must be
    applied and every output must equal the reference.
    """
    result = run_scenario(
        drift_tables(
            pre_runs=6,
            post_runs=14,
            pre_working_set=64,
            post_working_set=512,
            repeats=4,
            seed=parallelism,
        ),
        base_config=replace(
            base_config(parallelism), distinct_rows=64, distinct_cols=2
        ),
        workers=2,
        adaptive=True,
        verify=True,
    )
    assert result.all_exact
    outcomes = result.outcomes()
    assert outcomes.get("applied", 0) >= 1
    # Whatever the canary decided, the active config is a real override
    # or a clean revert — never a half-promoted staging.
    assert not result.store.pending(result.signature)
