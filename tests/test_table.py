"""Tests for the columnar Table (repro.engine.table)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.table import Table
from repro.errors import PlanError


@pytest.fixture
def table():
    return Table(
        "t",
        {
            "a": np.array([1, 2, 3, 4, 5]),
            "b": np.array([10.0, 20.0, 30.0, 40.0, 50.0]),
            "s": np.array(["x", "y", "x", "z", "y"]),
        },
    )


class TestConstruction:
    def test_basic(self, table):
        assert table.num_rows == 5
        assert len(table) == 5
        assert table.column_names == ["a", "b", "s"]

    def test_ragged_columns_rejected(self):
        with pytest.raises(PlanError):
            Table("t", {"a": np.array([1]), "b": np.array([1, 2])})

    def test_empty_columns_rejected(self):
        with pytest.raises(PlanError):
            Table("t", {})

    def test_from_rows(self, products_table):
        assert products_table.num_rows == 4
        assert products_table["price"].tolist() == [4, 7, 2, 5]

    def test_from_rows_arity_checked(self):
        with pytest.raises(PlanError):
            Table.from_rows("t", ["a", "b"], [(1,)])


class TestAccess:
    def test_column_lookup(self, table):
        assert table.column("a").tolist() == [1, 2, 3, 4, 5]
        assert table["a"] is table.column("a")

    def test_missing_column_raises_with_names(self, table):
        with pytest.raises(PlanError, match="available"):
            table.column("missing")

    def test_contains(self, table):
        assert "a" in table
        assert "zz" not in table


class TestTransforms:
    def test_project(self, table):
        projected = table.project(["b"])
        assert projected.column_names == ["b"]
        assert projected.num_rows == 5

    def test_mask(self, table):
        kept = table.mask(table["a"] > 3)
        assert kept["a"].tolist() == [4, 5]

    def test_mask_length_checked(self, table):
        with pytest.raises(PlanError):
            table.mask(np.array([True]))

    def test_take(self, table):
        taken = table.take(np.array([4, 0]))
        assert taken["a"].tolist() == [5, 1]

    def test_head(self, table):
        assert table.head(2)["a"].tolist() == [1, 2]

    def test_shuffled_is_permutation(self, table):
        shuffled = table.shuffled(seed=3)
        assert sorted(shuffled["a"].tolist()) == [1, 2, 3, 4, 5]
        assert shuffled.num_rows == 5

    def test_shuffled_keeps_rows_aligned(self, table):
        shuffled = table.shuffled(seed=3)
        pairs = set(zip(shuffled["a"].tolist(), shuffled["b"].tolist()))
        assert pairs == {(1, 10.0), (2, 20.0), (3, 30.0), (4, 40.0), (5, 50.0)}

    def test_concat(self, table):
        doubled = table.concat(table)
        assert doubled.num_rows == 10

    def test_concat_schema_mismatch(self, table):
        other = Table("o", {"a": np.array([1])})
        with pytest.raises(PlanError):
            table.concat(other)


class TestPartitioning:
    def test_partition_covers_all_rows(self, table):
        parts = table.partition(2)
        assert sum(p.num_rows for p in parts) == 5

    def test_partition_count(self, table):
        assert len(table.partition(3)) == 3

    def test_more_partitions_than_rows(self, table):
        parts = table.partition(10)
        assert sum(p.num_rows for p in parts) == 5

    def test_invalid_partition_count(self, table):
        with pytest.raises(PlanError):
            table.partition(0)

    def test_partitions_are_zero_copy_views(self, table):
        parts = table.partition(2)
        for part in parts:
            if part.num_rows:
                assert np.shares_memory(part.column("a"), table.column("a"))

    def test_partition_bounds_match_partition_sizes(self, table):
        bounds = table.partition_bounds(3)
        parts = table.partition(3)
        sizes = np.diff(bounds)
        assert sizes.tolist() == [p.num_rows for p in parts]
        assert table.partition_shares(3) == [p.num_rows for p in parts]

    def test_partition_remainder_lands_on_later_partitions(self):
        table = Table("t", {"x": np.arange(10)})
        assert table.partition_shares(3) == [3, 3, 4]
        with pytest.raises(PlanError):
            table.partition_bounds(0)


class TestRowStreaming:
    def test_iter_rows_projection(self, table):
        rows = list(table.iter_rows(["a", "s"]))
        assert rows[0] == (1, "x")
        assert len(rows) == 5

    def test_rows_materialized(self, table):
        assert table.rows(["a"]) == [(1,), (2,), (3,), (4,), (5,)]

    def test_repr(self, table):
        assert "rows=5" in repr(table)


class TestCsvRoundTrip:
    def test_roundtrip_numeric(self, table, tmp_path):
        from repro.engine.table import table_from_csv, table_to_csv

        path = tmp_path / "t.csv"
        table_to_csv(table, str(path))
        loaded = table_from_csv(str(path), name="t")
        assert loaded.column_names == table.column_names
        assert loaded["a"].tolist() == table["a"].tolist()
        assert loaded["b"].tolist() == table["b"].tolist()
        assert loaded["s"].tolist() == table["s"].tolist()

    def test_type_inference(self, tmp_path):
        from repro.engine.table import table_from_csv

        path = tmp_path / "mixed.csv"
        path.write_text("i,f,s\n1,1.5,abc\n2,2.5,def\n")
        loaded = table_from_csv(str(path))
        assert loaded["i"].dtype.kind == "i"
        assert loaded["f"].dtype.kind == "f"
        assert loaded["s"].dtype.kind in ("U", "O")

    def test_ragged_csv_rejected(self, tmp_path):
        from repro.engine.table import table_from_csv

        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1\n")
        with pytest.raises(PlanError, match="row 2"):
            table_from_csv(str(path))

    def test_empty_file_rejected(self, tmp_path):
        from repro.engine.table import table_from_csv

        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(PlanError):
            table_from_csv(str(path))

    def test_query_over_loaded_csv(self, tmp_path):
        from repro.engine.cluster import Cluster
        from repro.engine.sql import parse
        from repro.engine.table import table_from_csv

        path = tmp_path / "ratings.csv"
        path.write_text(
            "name,taste,texture\n"
            "Pizza,7,5\nCheetos,8,6\nJello,9,4\nBurger,5,7\nFries,3,3\n"
        )
        table = table_from_csv(str(path), name="Ratings")
        query = parse("SELECT name FROM Ratings SKYLINE OF taste, texture")
        result = Cluster(workers=2).run_verified(query, {"Ratings": table})
        assert result.output == {(8.0, 6.0), (9.0, 4.0), (5.0, 7.0)}
