"""Tests for the cluster runner (repro.engine.cluster)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.cluster import Cluster, ClusterConfig
from repro.engine.expressions import col
from repro.engine.plan import (
    CountOp,
    DistinctOp,
    FilterOp,
    GroupByOp,
    HavingOp,
    JoinOp,
    Query,
    SkylineOp,
    TopNOp,
)
from repro.engine.reference import run_reference
from repro.engine.table import Table
from repro.errors import PlanError
from repro.workloads import bigdata


@pytest.fixture(scope="module")
def small_tables():
    scale = bigdata.BigDataScale(
        rankings_rows=3000,
        uservisits_rows=6000,
        distinct_urls=1200,
        distinct_user_agents=80,
        distinct_languages=12,
    )
    return bigdata.tables(scale, seed=5)


@pytest.fixture
def cluster():
    return Cluster(workers=5)


class TestRunVerified:
    """Every operator's Cheetah output must match the reference executor."""

    def test_count(self, cluster, small_tables):
        result = cluster.run_verified(bigdata.query1_filter_count(), small_tables)
        assert result.op_kind == "filter"

    def test_distinct(self, cluster, small_tables):
        result = cluster.run_verified(bigdata.query2_distinct(), small_tables)
        assert result.pruning_rate > 0.9

    def test_skyline(self, cluster, small_tables):
        tables = dict(small_tables)
        tables["Rankings"] = bigdata.permuted(tables["Rankings"], seed=1)
        result = cluster.run_verified(bigdata.query3_skyline(), tables)
        assert result.op_kind == "skyline"

    def test_topn(self, cluster, small_tables):
        result = cluster.run_verified(bigdata.query4_topn(n=50), small_tables)
        assert len(result.output) == 50

    def test_groupby(self, cluster, small_tables):
        result = cluster.run_verified(bigdata.query5_groupby(), small_tables)
        assert result.pruning_rate > 0.5

    def test_join(self, cluster, small_tables):
        result = cluster.run_verified(bigdata.query6_join(), small_tables)
        assert result.op_kind == "join"
        assert len(result.phases) == 2  # build + probe

    def test_having(self, cluster, small_tables):
        query = bigdata.query7_having(threshold=3000.0)
        result = cluster.run_verified(query, small_tables)
        assert len(result.phases) == 2  # sketch + partial refetch

    def test_filter_row_ids(self, cluster, small_tables):
        query = Query(FilterOp("Rankings", col("avgDuration") < 10))
        result = cluster.run_verified(query, small_tables)
        assert result.output == run_reference(query, small_tables)

    def test_verification_failure_raises(self, cluster, small_tables):
        # Force a wrong answer by monkeypatching the output comparison:
        # a deliberately tiny fingerprint space makes DISTINCT collide.
        config = ClusterConfig(distinct_fingerprint=True)
        config.distinct_rows = 8
        cluster = Cluster(workers=2, config=config)
        # Patch the fingerprint width after construction via a custom run.
        from repro.core.distinct import FingerprintDistinctPruner

        query = bigdata.query2_distinct()
        original = cluster._build_pruner

        def tiny_pruner(q, tables):
            return FingerprintDistinctPruner(
                rows=8, cols=2, expected_distinct=80, fingerprint_bits=4
            )

        cluster._build_pruner = tiny_pruner
        with pytest.raises(AssertionError, match="pruning contract"):
            cluster.run_verified(query, small_tables)


class TestVolumes:
    def test_passthrough_forwards_everything(self, small_tables):
        cluster = Cluster(workers=3)
        result = cluster.run(bigdata.query2_distinct(), small_tables, use_cheetah=False)
        assert result.total_streamed == result.total_forwarded
        assert result.pruning_rate == 0.0

    def test_cheetah_and_baseline_same_output(self, small_tables):
        cluster = Cluster(workers=3)
        query = bigdata.query5_groupby()
        with_switch = cluster.run(query, small_tables, use_cheetah=True)
        without = cluster.run(query, small_tables, use_cheetah=False)
        assert with_switch.output == without.output

    def test_streamed_counts_match_table(self, cluster, small_tables):
        result = cluster.run(bigdata.query2_distinct(), small_tables)
        assert result.total_streamed == small_tables["UserVisits"].num_rows

    def test_join_build_pass_counts_both_tables(self, cluster, small_tables):
        result = cluster.run(bigdata.query6_join(), small_tables)
        build = result.phases[0]
        total = (
            small_tables["UserVisits"].num_rows + small_tables["Rankings"].num_rows
        )
        assert build.streamed == total
        assert build.forwarded == 0  # build traffic terminates at the switch

    def test_having_refetch_counts_candidate_entries(self, cluster, small_tables):
        query = bigdata.query7_having(threshold=3000.0)
        result = cluster.run(query, small_tables)
        sketch, refetch = result.phases
        assert refetch.streamed <= sketch.streamed
        assert refetch.forwarded == refetch.streamed

    def test_worker_count_recorded(self, small_tables):
        result = Cluster(workers=7).run(bigdata.query2_distinct(), small_tables)
        assert result.workers == 7


class TestWhereComposition:
    def test_where_with_distinct(self, cluster, small_tables):
        query = Query(
            DistinctOp("UserVisits", ("userAgent",)), where=col("duration") > 1800
        )
        result = cluster.run_verified(query, small_tables)
        assert result.output == run_reference(query, small_tables)

    def test_where_with_groupby(self, cluster, small_tables):
        query = Query(
            GroupByOp("UserVisits", "userAgent", "adRevenue", "max"),
            where=col("duration") > 600,
        )
        cluster.run_verified(query, small_tables)

    def test_unsupported_where_without_assist_refused(self, cluster, small_tables):
        # A LIKE before a stateful operator must demand worker assist.
        table = Table(
            "T",
            {
                "key": np.array(["a", "b", "a"]),
                "name": np.array(["xe", "ye", "ze"]),
            },
        )
        query = Query(DistinctOp("T", ("key",)), where=col("name").like("x%"))
        with pytest.raises(PlanError, match="worker_assist"):
            cluster.run(query, {"T": table})

    def test_unsupported_where_with_assist_works(self, small_tables):
        cluster = Cluster(workers=2, config=ClusterConfig(worker_assist_filters=True))
        table = Table(
            "T",
            {
                "key": np.array(["a", "b", "a", "c"]),
                "name": np.array(["xe", "ye", "xf", "xg"]),
            },
        )
        query = Query(DistinctOp("T", ("key",)), where=col("name").like("x%"))
        result = cluster.run_verified(query, {"T": table})
        assert result.output == {"a", "c"}

    def test_where_on_skyline(self, cluster, small_tables):
        query = Query(
            SkylineOp("Rankings", ("pageRank", "avgDuration")),
            where=col("avgDuration") > 30,
        )
        tables = dict(small_tables)
        tables["Rankings"] = bigdata.permuted(tables["Rankings"], seed=2)
        cluster.run_verified(query, tables)

    def test_where_on_having(self, cluster, small_tables):
        query = Query(
            HavingOp("UserVisits", "languageCode", "adRevenue", 500.0, "sum"),
            where=col("duration") > 1000,
        )
        cluster.run_verified(query, small_tables)


class TestConfiguration:
    def test_invalid_worker_count(self):
        with pytest.raises(PlanError):
            Cluster(workers=0)

    def test_prefiltered_join_rejected(self, cluster, small_tables):
        query = Query(
            JoinOp("UserVisits", "Rankings", "destURL", "pageURL"),
            where=col("duration") > 10,
        )
        with pytest.raises(PlanError):
            cluster.run(query, small_tables)

    def test_deterministic_topn_config(self, small_tables):
        cluster = Cluster(
            workers=2, config=ClusterConfig(topn_randomized=False, topn_thresholds=4)
        )
        cluster.run_verified(bigdata.query4_topn(n=100), small_tables)

    def test_fifo_distinct_config(self, small_tables):
        cluster = Cluster(workers=2, config=ClusterConfig(distinct_policy="fifo"))
        cluster.run_verified(bigdata.query2_distinct(), small_tables)

    def test_fingerprint_distinct_config(self, small_tables):
        cluster = Cluster(workers=2, config=ClusterConfig(distinct_fingerprint=True))
        cluster.run_verified(bigdata.query2_distinct(), small_tables)

    def test_rbf_join_config(self, small_tables):
        cluster = Cluster(workers=2, config=ClusterConfig(join_variant="rbf"))
        cluster.run_verified(bigdata.query6_join(), small_tables)

    def test_skyline_sum_score_config(self, small_tables):
        cluster = Cluster(workers=2, config=ClusterConfig(skyline_score="sum"))
        tables = dict(small_tables)
        tables["Rankings"] = bigdata.permuted(tables["Rankings"], seed=3)
        cluster.run_verified(bigdata.query3_skyline(), tables)

    def test_resource_validation_enforced(self, small_tables):
        from repro.errors import ResourceError
        from repro.switch.resources import MINI

        config = ClusterConfig(model=MINI)
        cluster = Cluster(workers=2, config=config)
        # The default 4 MB JOIN filters cannot fit MINI's 64 KB stages.
        with pytest.raises(ResourceError):
            cluster.run(bigdata.query6_join(), small_tables)

    def test_resource_validation_can_be_disabled(self, small_tables):
        from repro.switch.resources import MINI

        config = ClusterConfig(model=MINI, validate_resources=False)
        Cluster(workers=2, config=config).run(
            bigdata.query2_distinct(), small_tables
        )
