"""Tests for HAVING pruning (repro.core.having)."""

from __future__ import annotations

import random

import pytest

from repro.core.base import Guarantee, PruneDecision
from repro.core.having import HavingPruner, master_having, reference_having
from repro.errors import ConfigurationError, UnsupportedOperationError
from repro.workloads.synthetic import keyed_values


def _int_stream(length, keys, seed=0, hi=10):
    rng = random.Random(seed)
    return [(rng.randrange(keys), float(rng.randrange(1, hi))) for _ in range(length)]


def _run(pruner, stream):
    candidates = set()
    forwarded = 0
    for entry in stream:
        if pruner.process(entry) is PruneDecision.FORWARD:
            candidates.add(entry[0])
            forwarded += 1
    return candidates, forwarded


class TestHavingSumPath:
    def test_candidates_are_superset_of_answer(self):
        stream = _int_stream(5000, 50, seed=1)
        pruner = HavingPruner(threshold=400, width=64, depth=3)  # narrow: FPs
        candidates, _ = _run(pruner, stream)
        truth = set(reference_having(stream, 400))
        assert truth <= candidates

    def test_master_completion_removes_false_positives(self):
        stream = _int_stream(5000, 50, seed=2)
        pruner = HavingPruner(threshold=400, width=64, depth=3)
        candidates, _ = _run(pruner, stream)
        answer = set(master_having(candidates, stream, 400))
        assert answer == set(reference_having(stream, 400))

    def test_wide_sketch_few_false_positives(self):
        stream = _int_stream(5000, 200, seed=3)
        wide = HavingPruner(threshold=200, width=4096, depth=3)
        narrow = HavingPruner(threshold=200, width=16, depth=3)
        wide_cand, _ = _run(wide, stream)
        narrow_cand, _ = _run(narrow, list(stream))
        assert len(wide_cand) <= len(narrow_cand)

    def test_dedupe_suppresses_repeat_candidates(self):
        stream = [("hot", 100.0)] * 100
        with_dedupe = HavingPruner(threshold=50, width=64, dedupe_rows=64)
        without = HavingPruner(threshold=50, width=64, dedupe_rows=0)
        _, fwd_dedupe = _run(with_dedupe, stream)
        _, fwd_plain = _run(without, list(stream))
        assert fwd_dedupe == 1
        assert fwd_plain > 50

    def test_count_aggregate(self):
        stream = [("a", 1.0)] * 10 + [("b", 1.0)] * 2
        pruner = HavingPruner(threshold=5, aggregate="count", width=64)
        candidates, _ = _run(pruner, stream)
        assert "a" in candidates
        answer = set(master_having(candidates, stream, 5, "count"))
        assert answer == {"a"}

    def test_negative_sum_contribution_rejected(self):
        pruner = HavingPruner(threshold=10, aggregate="sum")
        with pytest.raises(UnsupportedOperationError):
            pruner.process(("k", -5.0))

    def test_less_than_direction_unsupported(self):
        with pytest.raises(UnsupportedOperationError):
            HavingPruner(threshold=-10, aggregate="sum")

    def test_contract_on_zipf_stream(self):
        stream = [(k, float(int(v))) for k, v in keyed_values(8000, 100, seed=4)]
        pruner = HavingPruner(threshold=1500, width=512, depth=3)
        candidates, _ = _run(pruner, stream)
        answer = set(master_having(candidates, stream, 1500))
        assert answer == set(reference_having(stream, 1500))


class TestHavingMaxMinPath:
    def test_max_forwards_only_passing_entries(self):
        pruner = HavingPruner(threshold=10, aggregate="max", dedupe_rows=0)
        assert pruner.process(("k", 5.0)) is PruneDecision.PRUNE
        assert pruner.process(("k", 15.0)) is PruneDecision.FORWARD

    def test_max_with_dedupe_one_per_key(self):
        pruner = HavingPruner(threshold=10, aggregate="max", dedupe_rows=64)
        stream = [("k", 20.0)] * 5 + [("j", 30.0)]
        candidates, fwd = _run(pruner, stream)
        assert candidates == {"k", "j"}
        assert fwd == 2

    def test_min_direction(self):
        pruner = HavingPruner(threshold=10, aggregate="min", dedupe_rows=0)
        assert pruner.process(("k", 5.0)) is PruneDecision.FORWARD
        assert pruner.process(("k", 50.0)) is PruneDecision.PRUNE

    def test_max_contract(self):
        stream = _int_stream(3000, 40, seed=6, hi=100)
        pruner = HavingPruner(threshold=80, aggregate="max", width=64)
        candidates, _ = _run(pruner, stream)
        answer = set(master_having(candidates, stream, 80, "max"))
        assert answer == set(reference_having(stream, 80, "max"))

    def test_negative_threshold_allowed_for_max(self):
        pruner = HavingPruner(threshold=-5, aggregate="max", dedupe_rows=0)
        assert pruner.process(("k", 0.0)) is PruneDecision.FORWARD


class TestConfiguration:
    def test_unknown_aggregate(self):
        with pytest.raises(ConfigurationError):
            HavingPruner(threshold=1, aggregate="median")

    def test_guarantee(self):
        assert HavingPruner(threshold=1).guarantee is Guarantee.DETERMINISTIC

    def test_footprint_includes_dedupe_stage(self):
        with_dedupe = HavingPruner(threshold=1, width=1024, depth=3, dedupe_rows=64)
        without = HavingPruner(threshold=1, width=1024, depth=3, dedupe_rows=0)
        assert with_dedupe.footprint().stages > without.footprint().stages

    def test_footprint_having_sram(self):
        fp = HavingPruner(threshold=1, width=1024, depth=3, dedupe_rows=0).footprint()
        assert fp.sram_bits == 1024 * 3 * 64

    def test_reset(self):
        pruner = HavingPruner(threshold=5, width=64)
        pruner.process(("k", 10.0))
        pruner.reset()
        assert pruner.stats.processed == 0
        # Sketch cleared: the same entry crosses the threshold afresh.
        assert pruner.process(("k", 10.0)) is PruneDecision.FORWARD


class TestMasterHaving:
    def test_exact_totals_filter_candidates(self):
        data = [("a", 10.0), ("a", 10.0), ("b", 1.0)]
        assert set(master_having({"a", "b"}, data, 15)) == {"a"}

    def test_only_candidates_considered(self):
        data = [("a", 100.0), ("b", 100.0)]
        assert set(master_having({"a"}, data, 50)) == {"a"}

    def test_reference_having(self):
        data = [("a", 10.0), ("b", 3.0), ("a", 10.0)]
        assert set(reference_having(data, 15)) == {"a"}

    def test_invalid_aggregate(self):
        with pytest.raises(ConfigurationError):
            master_having({"a"}, [("a", 1.0)], 0, "median")
