"""Signature health monitoring: windows, drift detectors, event log.

Exercises :class:`~repro.obs.HealthStore` (rolling windows, EWMA
pruning-collapse detection with hysteresis, bloom fill-growth and
threshold detectors, signature eviction), :class:`~repro.obs.EventLog`
(bounded ring, severity validation, JSONL export, mirrored counters),
and their integration into :class:`~repro.serve.server.QueryService`
reports.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.obs import EventLog, HealthStore, MetricsRegistry


class FakeResult:
    """Minimal stand-in for a RunResult: pruning rate plus metrics."""

    def __init__(self, pruning_rate: float, metrics=None) -> None:
        """Capture the rate and (optional) metrics registry."""
        self.pruning_rate = pruning_rate
        self.metrics = metrics


def result_with_gauges(pruning_rate: float, **gauges: float) -> FakeResult:
    """A FakeResult whose registry carries labeled gauge samples."""
    registry = MetricsRegistry()
    for family, value in gauges.items():
        registry.gauge(family, "", pruner="p0").set(value)
    return FakeResult(pruning_rate, registry)


# ---------------------------------------------------------------------------
# event log
# ---------------------------------------------------------------------------


class TestEventLog:
    def test_emit_assigns_monotone_seq(self):
        log = EventLog(capacity=8)
        first = log.emit("shed", "queue full", severity="warning")
        second = log.emit("fault", "boom", severity="error")
        assert (first.seq, second.seq) == (1, 2)
        assert len(log) == 2

    def test_capacity_evicts_oldest_and_counts(self):
        registry = MetricsRegistry()
        log = EventLog(capacity=3, registry=registry)
        for i in range(5):
            log.emit("tick", f"event {i}")
        assert len(log) == 3
        assert log.dropped == 2
        kept = [e["message"] for e in log.snapshot()]
        assert kept == ["event 2", "event 3", "event 4"]
        counters = registry.counter_values()
        assert counters["events_dropped_total{}"] == 2
        assert counters["events_total{kind=tick}"] == 5

    def test_snapshot_limit_returns_most_recent(self):
        log = EventLog(capacity=8)
        for i in range(4):
            log.emit("tick", f"event {i}")
        assert [e["seq"] for e in log.snapshot(limit=2)] == [3, 4]

    def test_invalid_severity_rejected(self):
        log = EventLog(capacity=4)
        with pytest.raises(ConfigurationError):
            log.emit("tick", "message", severity="fatal")

    def test_nonpositive_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            EventLog(capacity=0)

    def test_jsonl_export_round_trips(self, tmp_path):
        log = EventLog(capacity=8)
        log.emit("shed", "queue full", severity="warning", tenant="t1")
        path = str(tmp_path / "events.jsonl")
        assert log.to_jsonl(path) == 1
        lines = [json.loads(l) for l in open(path) if l.strip()]
        assert lines[0]["kind"] == "shed"
        assert lines[0]["labels"] == {"tenant": "t1"}
        assert lines[0]["severity"] == "warning"
        assert isinstance(lines[0]["seq"], int)


# ---------------------------------------------------------------------------
# health store mechanics
# ---------------------------------------------------------------------------


class TestHealthStoreMechanics:
    def test_windows_are_bounded(self):
        store = HealthStore(window=4)
        for i in range(10):
            store.observe_run("q", FakeResult(0.5), latency_s=0.001 * i)
        snap = store.snapshot()[0]
        assert snap["runs"] == 10
        assert snap["window"] == 4

    def test_latency_quantiles_reported_in_ms(self):
        store = HealthStore(window=16)
        for ms in (1.0, 2.0, 3.0, 4.0):
            store.observe_latency("q", ms / 1000.0)
        snap = store.snapshot()[0]
        assert snap["latency_p50_ms"] == pytest.approx(3.0)
        assert snap["latency_p99_ms"] == pytest.approx(4.0)

    def test_max_signatures_evicts_least_recent(self):
        store = HealthStore(window=4, max_signatures=2)
        store.observe_run("a", FakeResult(0.5), 0.001)
        store.observe_run("b", FakeResult(0.5), 0.001)
        store.observe_run("a", FakeResult(0.5), 0.001)  # refresh "a"
        store.observe_run("c", FakeResult(0.5), 0.001)  # evicts "b"
        assert len(store) == 2
        tracked = {s["signature"] for s in store.snapshot()}
        assert tracked == {"a", "c"}

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ConfigurationError):
            HealthStore(window=0)
        with pytest.raises(ConfigurationError):
            HealthStore(max_signatures=0)
        with pytest.raises(ConfigurationError):
            HealthStore(fast_alpha=0.0)

    def test_gauge_signals_sampled_from_metrics(self):
        store = HealthStore(window=8)
        result = result_with_gauges(
            0.6, bloom_fill_ratio=0.4, bloom_false_positive_rate=0.02
        )
        store.observe_run("q", result, 0.001)
        snap = store.snapshot()[0]
        assert snap["bloom_fill"] == pytest.approx(0.4)
        assert snap["bloom_fpr"] == pytest.approx(0.02)

    def test_cache_hit_rate_derived_from_hit_miss_gauges(self):
        store = HealthStore(window=8)
        result = result_with_gauges(
            0.6, cache_matrix_hits=3.0, cache_matrix_misses=1.0
        )
        store.observe_run("q", result, 0.001)
        assert store.snapshot()[0]["cache_hit_rate"] == pytest.approx(0.75)


# ---------------------------------------------------------------------------
# drift detectors
# ---------------------------------------------------------------------------


class TestDriftDetectors:
    def test_pruning_collapse_flags_and_emits_once(self):
        events = EventLog(capacity=32)
        registry = MetricsRegistry()
        store = HealthStore(
            window=16, registry=registry, events=events, min_samples=4
        )
        for _ in range(8):
            store.observe_run("q", FakeResult(0.9), 0.001)
        assert events.snapshot() == []
        for _ in range(8):
            store.observe_run("q", FakeResult(0.05), 0.001)
        degradations = [
            e for e in events.snapshot() if e["kind"] == "degradation"
        ]
        # Hysteresis: the whole excursion emits exactly one event.
        assert len(degradations) == 1
        event = degradations[0]
        assert event["labels"]["detector"] == "pruning_collapse"
        assert event["labels"]["signature"] == "q"
        assert event["severity"] == "warning"
        assert store.degraded_signatures() == ["q"]
        counters = registry.counter_values()
        assert (
            counters["health_degradations_total{detector=pruning_collapse}"]
            == 1
        )

    def test_stable_workload_emits_no_degradations(self):
        events = EventLog(capacity=32)
        store = HealthStore(window=16, events=events, min_samples=4)
        rng = np.random.default_rng(7)
        for _ in range(32):
            store.observe_run(
                "q", FakeResult(0.8 + rng.uniform(-0.05, 0.05)), 0.001
            )
        assert events.snapshot() == []
        assert store.degraded_signatures() == []

    def test_never_pruning_signature_is_not_collapsing(self):
        events = EventLog(capacity=32)
        store = HealthStore(window=16, events=events, min_samples=4)
        for _ in range(32):
            store.observe_run("q", FakeResult(0.0), 0.001)
        assert events.snapshot() == []

    def test_recovery_rearms_collapse_detector(self):
        events = EventLog(capacity=32)
        store = HealthStore(window=16, events=events, min_samples=4)
        for _ in range(8):
            store.observe_run("q", FakeResult(0.9), 0.001)
        for _ in range(8):
            store.observe_run("q", FakeResult(0.05), 0.001)
        # Recover: fast EWMA climbs back above 0.9x the baseline.
        for _ in range(32):
            store.observe_run("q", FakeResult(0.9), 0.001)
        assert store.degraded_signatures() == []
        for _ in range(8):
            store.observe_run("q", FakeResult(0.05), 0.001)
        collapses = [
            e
            for e in events.snapshot()
            if e["labels"].get("detector") == "pruning_collapse"
        ]
        assert len(collapses) == 2  # one per excursion

    def test_bloom_fill_growth_detector(self):
        events = EventLog(capacity=32)
        store = HealthStore(
            window=32, events=events, min_samples=2, fill_growth_run=4,
            fill_alarm=0.9,
        )
        fills = [0.5, 0.6, 0.7, 0.8, 0.92]
        for fill in fills:
            store.observe_run(
                "q", result_with_gauges(0.5, bloom_fill_ratio=fill), 0.001
            )
        growth = [
            e
            for e in events.snapshot()
            if e["labels"].get("detector") == "bloom_fill_growth"
        ]
        assert len(growth) == 1

    def test_bloom_fpr_threshold_detector(self):
        events = EventLog(capacity=32)
        store = HealthStore(window=16, events=events, min_samples=2)
        for fpr in (0.01, 0.02, 0.15):
            store.observe_run(
                "q",
                result_with_gauges(0.5, bloom_false_positive_rate=fpr),
                0.001,
            )
        alarms = [
            e
            for e in events.snapshot()
            if e["labels"].get("detector") == "bloom_fpr_alarm"
        ]
        assert len(alarms) == 1
        assert "crossed alarm level" in alarms[0]["message"]

    def test_cache_fill_threshold_uses_fill_ratio_not_occupancy(self):
        events = EventLog(capacity=32)
        store = HealthStore(window=16, events=events, min_samples=2)
        # Absolute occupancy far above 1.0 must NOT trip the alarm while
        # the fill *ratio* stays low.
        for _ in range(4):
            store.observe_run(
                "q",
                result_with_gauges(
                    0.5,
                    cache_matrix_occupancy=500.0,
                    cache_matrix_fill_ratio=0.2,
                ),
                0.001,
            )
        assert events.snapshot() == []
        store.observe_run(
            "q",
            result_with_gauges(
                0.5,
                cache_matrix_occupancy=2400.0,
                cache_matrix_fill_ratio=0.97,
            ),
            0.001,
        )
        alarms = [
            e
            for e in events.snapshot()
            if e["labels"].get("detector") == "cache_fill_alarm"
        ]
        assert len(alarms) == 1


# ---------------------------------------------------------------------------
# service integration
# ---------------------------------------------------------------------------


class TestServiceIntegration:
    def _tables(self, rows: int = 600) -> dict:
        from repro.engine.table import Table

        rng = np.random.default_rng(3)
        return {
            "products": Table(
                "products",
                {
                    "price": rng.integers(0, 400, rows),
                    "qty": rng.integers(0, 50, rows),
                },
            )
        }

    def test_report_carries_health_and_events(self):
        from repro.serve import QueryService

        with QueryService(self._tables(), workers=5) as service:
            service.query("SELECT COUNT(*) FROM products WHERE price > 250")
            service.update_tables(self._tables())
            report = service.report()
        assert report["summary"]["degraded_signatures"] == []
        signatures = report["health"]
        assert len(signatures) == 1
        assert signatures[0]["runs"] == 1
        assert signatures[0]["latency_p50_ms"] > 0
        kinds = {e["kind"] for e in report["events"]}
        assert "cache-invalidation" in kinds

    def test_serving_cache_hit_still_observes_latency(self):
        from repro.serve import QueryService

        with QueryService(self._tables(), workers=5) as service:
            sql = "SELECT COUNT(*) FROM products WHERE price > 250"
            service.query(sql)
            service.query(sql)  # served from the result cache
            report = service.report()
        snap = report["health"][0]
        assert snap["runs"] == 1  # one engine pass
        assert snap["latency_samples"] == 2  # but two latency observations

    def test_shed_requests_emit_events(self):
        from repro.serve import QueryService

        with QueryService(
            self._tables(), workers=5, max_queue=1, worker_threads=1
        ) as service:
            service.pause()
            sql = "SELECT COUNT(*) FROM products WHERE price > %d"
            handles = []
            shed = 0
            for i in range(6):
                try:
                    handles.append(service.submit(sql % (200 + i)))
                except Exception:
                    shed += 1
            service.resume()
            for handle in handles:
                handle.result()
            report = service.report()
        assert shed > 0
        shed_events = [e for e in report["events"] if e["kind"] == "shed"]
        assert shed_events and all(
            e["severity"] == "warning" for e in shed_events
        )
