"""Tests for the completion-time cost model (repro.engine.cost)."""

from __future__ import annotations

import pytest

from repro.engine.cluster import PhaseVolume, RunResult
from repro.engine.cost import Breakdown, CostModel
from repro.errors import ConfigurationError


def _result(op_kind, streamed, forwarded, workers=5):
    return RunResult(
        query="test",
        output=None,
        phases=[PhaseVolume("stream", streamed=streamed, forwarded=forwarded)],
        used_cheetah=True,
        workers=workers,
        op_kind=op_kind,
    )


class TestBreakdown:
    def test_total_overlaps_network_and_master(self):
        b = Breakdown(worker=1.0, network=3.0, master=2.0, setup=0.5)
        assert b.total == 0.5 + 1.0 + 3.0

    def test_serial_total_sums(self):
        b = Breakdown(worker=1.0, network=3.0, master=2.0, setup=0.5)
        assert b.serial_total == 6.5


class TestCheetahModel:
    def test_network_scales_with_streamed(self):
        model = CostModel()
        small = model.cheetah_breakdown(_result("distinct", 10_000, 100))
        large = model.cheetah_breakdown(_result("distinct", 100_000, 1000))
        assert large.network == pytest.approx(small.network * 10)

    def test_master_scales_with_forwarded(self):
        model = CostModel()
        low = model.cheetah_breakdown(_result("distinct", 100_000, 1000))
        high = model.cheetah_breakdown(_result("distinct", 100_000, 50_000))
        assert high.master > low.master * 10

    def test_master_penalty_superlinear(self):
        # Fig. 9: doubling the unpruned share more than doubles master time.
        model = CostModel()
        t1 = model.master_time(10_000, 100_000, 0.2)
        t2 = model.master_time(20_000, 100_000, 0.2)
        assert t2 > 2 * t1

    def test_worker_time_divided_by_workers(self):
        model = CostModel()
        few = model.cheetah_breakdown(_result("distinct", 100_000, 100, workers=2))
        many = model.cheetah_breakdown(_result("distinct", 100_000, 100, workers=10))
        assert few.worker == pytest.approx(many.worker * 5)

    def test_faster_nic_halves_network_bound_time(self):
        # §8.2.3: at 10G Cheetah is network-bound; 20G gives ~2x.
        model10 = CostModel(network_gbps=10, setup_s=0.0)
        model20 = model10.with_network(20)
        result = _result("groupby", 2_000_000, 2_000)
        t10 = model10.cheetah_breakdown(result)
        t20 = model20.cheetah_breakdown(result)
        assert t10.network == pytest.approx(2 * t20.network)
        assert t10.total / t20.total > 1.5

    def test_entry_packing_reduces_network(self):
        # §9 extension: 4 entries per packet -> 1/4 of the frames.
        single = CostModel(entries_per_packet=1)
        packed = CostModel(entries_per_packet=4)
        result = _result("distinct", 1_000_000, 100)
        assert packed.cheetah_breakdown(result).network == pytest.approx(
            single.cheetah_breakdown(result).network / 4
        )

    def test_unknown_op_kind_raises(self):
        model = CostModel()
        with pytest.raises(ConfigurationError):
            model.cheetah_breakdown(_result("sort", 100, 10))


class TestSparkModel:
    def test_first_run_slower(self):
        model = CostModel()
        result = _result("groupby", 1_000_000, 1_000)
        first = model.spark_breakdown(result, first_run=True)
        later = model.spark_breakdown(result, first_run=False)
        assert first.total > later.total

    def test_spark_insensitive_to_network_rate(self):
        # Fig. 8: Spark is compute-bound, so a faster NIC barely helps.
        result = _result("groupby", 2_000_000, 2_000)
        t10 = CostModel(network_gbps=10).spark_breakdown(result)
        t20 = CostModel(network_gbps=20).spark_breakdown(result)
        assert t10.total == pytest.approx(t20.total, rel=0.05)

    def test_aggregation_costlier_than_filter(self):
        model = CostModel()
        agg = model.spark_breakdown(_result("groupby", 1_000_000, 100))
        filt = model.spark_breakdown(_result("filter", 1_000_000, 100))
        assert agg.worker > filt.worker


class TestSpeedups:
    """The Fig. 5 shape: Cheetah wins on aggregation, ~even on filtering."""

    def test_cheetah_wins_on_groupby(self):
        model = CostModel()
        result = _result("groupby", 2_000_000, 5_000)
        assert model.speedup(result, first_run=False) > 1.3

    def test_cheetah_wins_more_on_first_run(self):
        model = CostModel()
        result = _result("groupby", 2_000_000, 5_000)
        assert model.speedup(result, first_run=True) > model.speedup(result)

    def test_filtering_is_not_a_clear_win(self):
        # BigData A: serialization outweighs the saved scan per the paper.
        model = CostModel()
        result = _result("filter", 2_000_000, 50_000)
        assert model.speedup(result, first_run=False) < 1.3

    def test_gap_widens_with_scale(self):
        # Fig. 6a: the Cheetah advantage grows with data size.
        model = CostModel()
        small = model.speedup(_result("distinct", 500_000, 500))
        large = model.speedup(_result("distinct", 4_000_000, 4_000))
        assert large > small

    def test_speedup_stable_across_worker_counts(self):
        # Fig. 6b: roughly the same improvement factor per worker count.
        model = CostModel()
        speedups = [
            model.speedup(_result("distinct", 2_000_000, 2_000, workers=w))
            for w in (2, 4, 8)
        ]
        assert max(speedups) / min(speedups) < 1.6


class TestValidation:
    def test_invalid_network_rate(self):
        with pytest.raises(ConfigurationError):
            CostModel(network_gbps=0)

    def test_invalid_packing(self):
        with pytest.raises(ConfigurationError):
            CostModel(entries_per_packet=0)
