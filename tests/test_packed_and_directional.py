"""Tests for §6 packed execution and directional SKYLINE (footnote 4)."""

from __future__ import annotations

import pytest

from repro.core.base import PruneDecision
from repro.core.skyline import (
    DirectionalSkylinePruner,
    master_directional_skyline,
    reflect_point,
)
from repro.engine.cluster import Cluster, ClusterConfig
from repro.engine.expressions import col
from repro.engine.plan import (
    CountOp,
    DistinctOp,
    GroupByOp,
    HavingOp,
    Query,
    TopNOp,
)
from repro.engine.reference import run_reference
from repro.errors import ConfigurationError, PlanError, ResourceError
from repro.workloads import bigdata
from repro.workloads.synthetic import uniform_points


@pytest.fixture(scope="module")
def tables():
    scale = bigdata.BigDataScale(
        rankings_rows=3000, uservisits_rows=6000, distinct_urls=1200
    )
    return bigdata.tables(scale, seed=3)


class TestRunPacked:
    def test_three_queries_one_pass(self, tables):
        queries = [
            Query(DistinctOp("UserVisits", ("userAgent",))),
            Query(GroupByOp("UserVisits", "userAgent", "adRevenue", "max")),
            Query(CountOp("UserVisits", col("duration") > 1800)),
        ]
        packed = Cluster(workers=3).run_packed(queries, tables)
        for query, result in zip(queries, packed.results):
            assert result.output == run_reference(query, tables)
        # One pass over the table, not one per query.
        assert packed.total_streamed == tables["UserVisits"].num_rows

    def test_packed_forwards_union_of_bits(self, tables):
        # The shared stream forwards an entry if ANY query needs it, so
        # packed pruning is at most each query's solo pruning.
        queries = [
            Query(DistinctOp("UserVisits", ("userAgent",))),
            Query(CountOp("UserVisits", col("duration") > 1800)),
        ]
        cluster = Cluster(workers=3)
        packed = cluster.run_packed(queries, tables)
        for query in queries:
            solo = cluster.run(query, tables)
            assert packed.pruning_rate <= solo.pruning_rate + 1e-9

    def test_packed_with_topn(self, tables):
        queries = [
            Query(TopNOp("UserVisits", "adRevenue", 100)),
            Query(DistinctOp("UserVisits", ("languageCode",))),
        ]
        packed = Cluster(workers=3).run_packed(queries, tables)
        for query, result in zip(queries, packed.results):
            assert result.output == run_reference(query, tables)

    def test_multi_pass_operators_rejected(self, tables):
        with pytest.raises(PlanError, match="single-pass"):
            Cluster().run_packed(
                [Query(HavingOp("UserVisits", "languageCode", "adRevenue", 10.0))],
                tables,
            )

    def test_where_rejected(self, tables):
        with pytest.raises(PlanError, match="WHERE"):
            Cluster().run_packed(
                [Query(DistinctOp("UserVisits", ("userAgent",)),
                       where=col("duration") > 1)],
                tables,
            )

    def test_mixed_tables_rejected(self, tables):
        with pytest.raises(PlanError, match="one table"):
            Cluster().run_packed(
                [
                    Query(DistinctOp("UserVisits", ("userAgent",))),
                    Query(CountOp("Rankings", col("avgDuration") < 10)),
                ],
                tables,
            )

    def test_empty_rejected(self, tables):
        with pytest.raises(PlanError):
            Cluster().run_packed([], tables)

    def test_resource_packing_enforced(self, tables):
        from repro.switch.resources import MINI

        cluster = Cluster(workers=2, config=ClusterConfig(model=MINI))
        queries = [
            Query(DistinctOp("UserVisits", ("userAgent",))),
            Query(GroupByOp("UserVisits", "userAgent", "adRevenue", "max")),
        ]
        with pytest.raises(ResourceError):
            cluster.run_packed(queries, tables)

    def test_per_query_results_tagged(self, tables):
        queries = [
            Query(DistinctOp("UserVisits", ("userAgent",))),
            Query(GroupByOp("UserVisits", "userAgent", "adRevenue", "max")),
        ]
        packed = Cluster(workers=3).run_packed(queries, tables)
        assert packed.results[0].op_kind == "distinct"
        assert packed.results[1].op_kind == "groupby"

    def test_packed_report_matches_run_report_shape(self, tables):
        import json

        queries = [
            Query(DistinctOp("UserVisits", ("userAgent",))),
            Query(CountOp("UserVisits", col("duration") > 1800)),
        ]
        cluster = Cluster(workers=3)
        packed_report = cluster.run_packed(queries, tables).report()
        solo_report = cluster.run(queries[0], tables).report()
        # Same top-level shape as RunResult.report (plus "queries").
        assert set(solo_report) <= set(packed_report)
        assert packed_report["op_kind"] == "packed"
        assert packed_report["workers"] == 3
        totals = packed_report["totals"]
        assert totals["streamed"] == tables["UserVisits"].num_rows
        assert totals["pruned"] == totals["streamed"] - totals["forwarded"]
        assert 0.0 <= totals["pruning_rate"] <= 1.0
        assert [p["name"] for p in packed_report["phases"]] == ["packed-stream"]
        assert packed_report["phases"][0]["seconds"] is not None
        # Per-query isolation: each embedded report is a full run report.
        assert len(packed_report["queries"]) == 2
        for sub in packed_report["queries"]:
            assert set(solo_report) <= set(sub)
        json.dumps(packed_report)  # JSON-ready end to end


class TestReflectPoint:
    def test_max_dims_unchanged(self):
        assert reflect_point((3.0, 4.0), ["max", "max"], [10, 10]) == (3.0, 4.0)

    def test_min_dims_reflected(self):
        assert reflect_point((3.0, 4.0), ["max", "min"], [10, 10]) == (3.0, 6.0)

    def test_value_above_bound_rejected(self):
        with pytest.raises(ConfigurationError):
            reflect_point((11.0,), ["min"], [10])

    def test_arity_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            reflect_point((1.0, 2.0), ["max"], [10, 10])

    def test_unknown_direction_rejected(self):
        with pytest.raises(ConfigurationError):
            reflect_point((1.0,), ["sideways"], [10])


class TestDirectionalSkyline:
    def _run(self, pruner, points):
        received = []
        for point in points:
            if pruner.process(point) is PruneDecision.FORWARD:
                received.append(pruner.last_carried)
        received.extend(pruner.drain())
        return received

    def test_min_min_skyline_contract(self):
        # Minimize both dimensions (e.g. price and latency).
        points = uniform_points(2000, dims=2, high=1000, seed=4)
        pruner = DirectionalSkylinePruner(
            directions=["min", "min"], bounds=[1000, 1000], points=8
        )
        received = self._run(pruner, points)
        got = set(master_directional_skyline(received, ["min", "min"]))
        expected = set(master_directional_skyline(points, ["min", "min"]))
        assert got == expected

    def test_mixed_directions_contract(self):
        points = uniform_points(2000, dims=2, high=1000, seed=5)
        directions = ["max", "min"]
        pruner = DirectionalSkylinePruner(
            directions=directions, bounds=[1000, 1000], points=8
        )
        received = self._run(pruner, points)
        got = set(master_directional_skyline(received, directions))
        expected = set(master_directional_skyline(points, directions))
        assert got == expected

    def test_all_max_matches_plain_skyline(self):
        from repro.core.skyline import master_skyline

        points = uniform_points(1000, dims=2, high=500, seed=6)
        assert set(master_directional_skyline(points, ["max", "max"])) == set(
            master_skyline(points)
        )

    def test_drain_in_original_coordinates(self):
        pruner = DirectionalSkylinePruner(
            directions=["min", "min"], bounds=[100, 100], points=4
        )
        pruner.process((5.0, 5.0))  # excellent under min/min
        assert (5.0, 5.0) in pruner.drain()

    def test_aph_score_works_with_reflection(self):
        points = uniform_points(1500, dims=2, high=1 << 15, seed=7)
        pruner = DirectionalSkylinePruner(
            directions=["min", "max"], bounds=[1 << 15, 1 << 15],
            points=6, score="aph",
        )
        received = self._run(pruner, points)
        got = set(master_directional_skyline(received, ["min", "max"]))
        expected = set(master_directional_skyline(points, ["min", "max"]))
        assert got == expected

    def test_footprint_delegates(self):
        pruner = DirectionalSkylinePruner(
            directions=["min", "max"], bounds=[10, 10], points=5
        )
        assert pruner.footprint().stages > 0

    def test_reset(self):
        pruner = DirectionalSkylinePruner(
            directions=["min", "max"], bounds=[10, 10], points=2
        )
        pruner.process((1.0, 2.0))
        pruner.reset()
        assert pruner.drain() == []
