"""Tests for the CWorker/CMaster services (repro.net.services)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.table import Table
from repro.errors import ProtocolError
from repro.net.packets import CheetahPacket
from repro.net.services import CMaster, CWorker, ValueCodec, stream_query_columns


@pytest.fixture
def visits():
    return Table(
        "V",
        {
            "agent": np.array([3, 1, 3, 2, 1, 0]),
            "revenue": np.array([1.25, 2.5, 0.1, 9.0, 3.3, 4.4]),
        },
    )


class TestValueCodec:
    def test_int_roundtrip(self):
        codec = ValueCodec()
        assert codec.encode(42) == 42
        assert codec.encode(-7) == -7

    def test_bool(self):
        codec = ValueCodec()
        assert codec.encode(True) == 1

    def test_float_fixed_point_rounds_up(self):
        codec = ValueCodec(float_scale=1000)
        assert codec.encode(1.2501) == 1251  # ceil keeps sums one-sided
        assert codec.decode_float(1250) == 1.25

    def test_numpy_values(self):
        codec = ValueCodec()
        assert codec.encode(np.int64(5)) == 5
        assert codec.encode(np.float64(0.5)) == 500

    def test_string_fingerprints_are_stable(self):
        codec = ValueCodec()
        assert codec.encode("mozilla") == codec.encode("mozilla")
        assert codec.encode("mozilla") != codec.encode("chrome")

    def test_string_fits_signed_64(self):
        codec = ValueCodec()
        for s in ("a", "b", "long-user-agent-string"):
            word = codec.encode(s)
            assert -(1 << 63) <= word <= (1 << 63) - 1

    def test_unencodable_type(self):
        with pytest.raises(ProtocolError):
            ValueCodec().encode([1, 2])

    def test_overflow_rejected(self):
        with pytest.raises(ProtocolError):
            ValueCodec().encode(1 << 63)

    def test_encode_row(self):
        codec = ValueCodec()
        assert codec.encode_row([1, 2.0]) == (1, 2000)


class TestCWorker:
    def test_one_packet_per_row_plus_fin(self, visits):
        worker = CWorker(fid=0, partition=visits, columns=["agent"])
        packets = worker.materialize()
        assert len(packets) == 7  # 6 data packets + one bare FIN
        assert [p.fin for p in packets] == [False] * 6 + [True]
        assert packets[-1].values == ()
        assert [p.seq for p in packets] == list(range(7))

    def test_projected_columns_only(self, visits):
        worker = CWorker(fid=0, partition=visits, columns=["agent", "revenue"])
        packet = worker.materialize()[0]
        assert len(packet.values) == 2
        assert packet.values[0] == 3

    def test_empty_partition_sends_bare_fin(self, visits):
        empty = visits.head(0) if False else Table("E", {"agent": np.array([], dtype=int)})
        worker = CWorker(fid=2, partition=empty, columns=["agent"])
        packets = worker.materialize()
        assert len(packets) == 1
        assert packets[0].fin and packets[0].values == ()

    def test_packets_roundtrip_wire_format(self, visits):
        worker = CWorker(fid=1, partition=visits, columns=["revenue"])
        for packet in worker.packets():
            assert CheetahPacket.decode(packet.encode()) == packet


class TestCMaster:
    def test_collects_and_completes(self, visits):
        workers, master = stream_query_columns(visits, ["agent"], workers=3)
        for worker in workers:
            for packet in worker.packets():
                master.receive(packet)
        assert master.complete
        assert len(master.rows()) == 6

    def test_incomplete_until_all_fins(self, visits):
        workers, master = stream_query_columns(visits, ["agent"], workers=2)
        for packet in workers[0].packets():
            master.receive(packet)
        assert not master.complete

    def test_duplicate_seq_discarded(self, visits):
        workers, master = stream_query_columns(visits, ["agent"], workers=1)
        packets = workers[0].materialize()
        master.receive(packets[0])
        assert master.receive(packets[0]) is False
        assert master.flows[0].duplicates == 1
        assert len(master.rows(0)) == 1

    def test_unknown_fid_rejected(self, visits):
        _, master = stream_query_columns(visits, ["agent"], workers=1)
        with pytest.raises(ProtocolError):
            master.receive(CheetahPacket(fid=9, seq=0, values=(1,)))

    def test_column_as_float_decodes_fixed_point(self, visits):
        workers, master = stream_query_columns(visits, ["revenue"], workers=1)
        for packet in workers[0].packets():
            master.receive(packet)
        decoded = master.column_as_float(0)
        # Ceil encoding: decoded >= true value, within one quantum.
        for got, true in zip(decoded, visits["revenue"].tolist()):
            assert true <= got <= true + 0.001

    def test_per_fid_rows(self, visits):
        workers, master = stream_query_columns(visits, ["agent"], workers=2)
        for worker in workers:
            for packet in worker.packets():
                master.receive(packet)
        assert len(master.rows(0)) + len(master.rows(1)) == 6


class TestEndToEndWithReliability:
    def test_services_over_lossy_links_distinct(self, visits):
        """CWorker packets -> reliability protocol -> CMaster, with pruning."""
        from repro.core.distinct import DistinctPruner
        from repro.net.reliability import ReliableTransfer

        worker = CWorker(fid=0, partition=visits, columns=["agent"])
        packets = worker.materialize()
        pruner = DistinctPruner(rows=8, cols=2)
        transfer = ReliableTransfer(
            pruner, decode_entry=lambda p: p.values[0], loss=0.25, seed=3
        )
        transfer.run(packets)
        master = CMaster(expected_fids=[0])
        for packet in transfer.master_unique_packets:
            master.receive(packet)
        received_agents = {row[0] for row in master.rows(0)}
        assert received_agents == set(visits["agent"].tolist())
        assert master.complete  # the bare FIN is never pruned


class TestWorkerAssistBits:
    def test_assist_bits_appended(self, visits):
        worker = CWorker(
            fid=0,
            partition=visits,
            columns=["agent"],
            assist_predicates=[lambda row: row[0] > 1],
        )
        packets = worker.materialize()
        # agent values: 3,1,3,2,1,0 -> bits 1,0,1,1,0,0
        bits = [p.values[-1] for p in packets if p.values]
        assert bits == [1, 0, 1, 1, 0, 0]

    def test_switch_filters_on_assist_bit(self, visits):
        """Full §4.1 loop: CWorker computes the unsupported predicate,
        the switch filters exactly on the shipped bit."""
        from repro.core.filtering import Atom, FilterPruner, Var

        worker = CWorker(
            fid=0,
            partition=visits,
            columns=["agent"],
            # Pretend this is a LIKE the switch cannot run.
            assist_predicates=[lambda row: row[0] % 2 == 0],
        )
        # The switch-side formula reads the shipped bit (index 1).
        bit_atom = Var(Atom("assist-bit", lambda values: bool(values[1])))
        pruner = FilterPruner(bit_atom, worker_assist=True)
        survivors = [
            p.values[0]
            for p in worker.materialize()
            if p.values and pruner.process(p.values) .value == "forward"
        ]
        expected = [a for a in visits["agent"].tolist() if a % 2 == 0]
        assert survivors == expected

    def test_multiple_assist_predicates(self, visits):
        worker = CWorker(
            fid=0,
            partition=visits,
            columns=["agent"],
            assist_predicates=[lambda r: r[0] > 1, lambda r: r[0] == 0],
        )
        packet = worker.materialize()[0]
        assert len(packet.values) == 3  # value + two bits
