"""Hierarchical tracing: context propagation, exports, serving trees.

Covers the :class:`~repro.obs.TraceContext` primitives, nested span
parenting, the JSONL export round trip and tree renderer, shard-task
re-parenting across the process boundary at parallelism {1, 2, 4}, the
fused per-batch sampler (and that it adds zero spans when disabled),
and the end-to-end :class:`~repro.serve.server.QueryService` trace tree
a served workload produces.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.cluster import Cluster, ClusterConfig
from repro.engine.expressions import col
from repro.engine.plan import CountOp, FilterOp, Query
from repro.engine.table import Table
from repro.errors import ConfigurationError
from repro.obs import (
    MetricsRegistry,
    Span,
    TraceContext,
    current_context,
    export_trace_jsonl,
    format_trace_tree,
    load_trace_jsonl,
    trace_context,
)


def make_tables(seed: int = 1, rows: int = 900) -> dict:
    rng = np.random.default_rng(seed)
    return {
        "products": Table(
            "products",
            {
                "price": rng.integers(0, 400, rows),
                "qty": rng.integers(0, 50, rows),
            },
        )
    }


# ---------------------------------------------------------------------------
# TraceContext primitives
# ---------------------------------------------------------------------------


class TestTraceContext:
    def test_root_and_child_ids(self):
        root = TraceContext.root()
        assert root.parent_id is None
        child = root.child()
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id
        assert child.span_id != root.span_id

    def test_dict_round_trip(self):
        ctx = TraceContext.root().child()
        assert TraceContext.from_dict(ctx.to_dict()) == ctx

    def test_activation_is_scoped(self):
        assert current_context() is None
        ctx = TraceContext.root()
        with trace_context(ctx):
            assert current_context() is ctx
            inner = TraceContext.root()
            with trace_context(inner):
                assert current_context() is inner
            assert current_context() is ctx
        assert current_context() is None

    def test_none_activation_is_noop(self):
        with trace_context(None) as active:
            assert active is None
            assert current_context() is None


# ---------------------------------------------------------------------------
# span parenting and serialization
# ---------------------------------------------------------------------------


class TestSpanParenting:
    def test_spans_without_context_carry_no_ids(self):
        registry = MetricsRegistry()
        with registry.trace("phase"):
            pass
        span = registry.spans[0]
        assert span.trace_id is None and span.span_id is None
        assert "trace_id" not in span.to_dict()

    def test_nested_spans_form_parent_chain(self):
        registry = MetricsRegistry()
        ctx = TraceContext.root()
        with trace_context(ctx):
            with registry.trace("outer"):
                with registry.trace("inner"):
                    pass
        inner, outer = registry.spans  # innermost finishes first
        assert outer.parent_id == ctx.span_id
        assert inner.parent_id == outer.span_id
        assert inner.trace_id == outer.trace_id == ctx.trace_id

    def test_span_dict_round_trip_preserves_ids(self):
        span = Span("s", 0.5, {"k": "v"}, trace_id="t", span_id="a", parent_id="b")
        clone = Span.from_dict(span.to_dict())
        assert (clone.trace_id, clone.span_id, clone.parent_id) == ("t", "a", "b")

    def test_relabel_preserves_trace_ids(self):
        span = Span("s", 0.5, {}, trace_id="t", span_id="a", parent_id="b")
        shard = span.relabel(shard="3")
        assert shard.labels == {"shard": "3"}
        assert (shard.trace_id, shard.span_id, shard.parent_id) == ("t", "a", "b")


# ---------------------------------------------------------------------------
# JSONL export and tree rendering
# ---------------------------------------------------------------------------


class TestExports:
    def test_jsonl_round_trip_skips_flat_spans(self, tmp_path):
        registry = MetricsRegistry()
        with registry.trace("flat"):
            pass
        with trace_context(TraceContext.root()):
            with registry.trace("placed"):
                pass
        path = str(tmp_path / "trace.jsonl")
        written = export_trace_jsonl(registry.spans, path)
        assert written == 1
        loaded = load_trace_jsonl(path)
        assert [s.name for s in loaded] == ["placed"]

    def test_tree_indents_children_and_filters(self):
        ctx = TraceContext.root()
        registry = MetricsRegistry()
        with trace_context(ctx):
            with registry.trace("request"):
                with registry.trace("stream"):
                    pass
        lines = format_trace_tree(registry.spans)
        assert lines[0].startswith(f"trace {ctx.trace_id}")
        assert any(l.startswith("  - request") for l in lines)
        assert any(l.startswith("    - stream") for l in lines)
        assert format_trace_tree(registry.spans, trace_id="missing") == []

    def test_tree_limit_caps_traces(self):
        spans = [
            Span("a", 0.0, {}, trace_id=f"t{i}", span_id=f"s{i}")
            for i in range(4)
        ]
        lines = format_trace_tree(spans, limit=2)
        assert sum(1 for l in lines if l.startswith("trace ")) == 2


# ---------------------------------------------------------------------------
# cross-process propagation through the parallel dataplane
# ---------------------------------------------------------------------------


class TestParallelPropagation:
    @pytest.mark.parametrize("parallelism", [1, 2, 4])
    def test_shard_spans_reparent_under_request_trace(self, parallelism):
        tables = make_tables()
        query = Query(CountOp("products", col("price") > 250))
        cluster = Cluster(
            workers=5,
            config=ClusterConfig(
                batch_size=128,
                parallelism=parallelism,
                fused_trace_sample=2,
            ),
        )
        ctx = TraceContext.root()
        with trace_context(ctx):
            result = cluster.run(query, tables)
        spans = result.metrics.spans
        assert spans and all(s.trace_id == ctx.trace_id for s in spans)
        if parallelism > 1:
            stream = [s for s in spans if s.name == "stream"]
            shard_spans = [s for s in spans if s.name == "shard-stream"]
            assert len(shard_spans) == parallelism
            assert {s.labels["shard"] for s in shard_spans} == {
                str(k) for k in range(parallelism)
            }
            assert all(s.parent_id == stream[0].span_id for s in shard_spans)
            fused = [s for s in spans if s.name == "fused-batch"]
            shard_ids = {s.span_id for s in shard_spans}
            assert fused and all(f.parent_id in shard_ids for f in fused)

    def test_parallel_without_context_adds_no_spans(self):
        tables = make_tables()
        query = Query(FilterOp("products", col("price") > 250))
        cluster = Cluster(
            workers=5,
            config=ClusterConfig(
                batch_size=128, parallelism=2, fused_trace_sample=2
            ),
        )
        result = cluster.run(query, tables)
        names = {s.name for s in result.metrics.spans}
        assert "shard-stream" not in names and "fused-batch" not in names
        assert all(s.trace_id is None for s in result.metrics.spans)


# ---------------------------------------------------------------------------
# fused per-batch sampling
# ---------------------------------------------------------------------------


class TestFusedSampling:
    def _run(self, sample: int):
        tables = make_tables(rows=1000)
        query = Query(CountOp("products", col("price") > 100))
        cluster = Cluster(
            workers=5,
            config=ClusterConfig(batch_size=100, fused_trace_sample=sample),
        )
        with trace_context(TraceContext.root()):
            result = cluster.run(query, tables)
        return [s for s in result.metrics.spans if s.name == "fused-batch"]

    def test_disabled_sampler_adds_zero_spans(self):
        assert self._run(0) == []

    def test_sampler_records_every_nth_batch(self):
        fused = self._run(4)
        # 1000 rows / 100-row batches = 10 batches; every 4th sampled.
        assert [s.labels["batch"] for s in fused] == ["0", "4", "8"]

    def test_sampler_inactive_without_trace_context(self):
        tables = make_tables(rows=400)
        query = Query(CountOp("products", col("price") > 100))
        cluster = Cluster(
            workers=5,
            config=ClusterConfig(batch_size=100, fused_trace_sample=1),
        )
        result = cluster.run(query, tables)
        assert not [s for s in result.metrics.spans if s.name == "fused-batch"]

    def test_negative_sample_rejected(self):
        with pytest.raises(ConfigurationError):
            ClusterConfig(fused_trace_sample=-1)


# ---------------------------------------------------------------------------
# end-to-end: the serving layer's request trace trees
# ---------------------------------------------------------------------------


class TestServiceTraces:
    def test_served_requests_produce_coherent_trees(self, tmp_path):
        from repro.serve import QueryService

        tables = make_tables(rows=600)
        config = ClusterConfig(
            batch_size=128, parallelism=2, fused_trace_sample=4
        )
        with QueryService(tables, workers=5, config=config) as service:
            service.query("SELECT COUNT(*) FROM products WHERE price > 250")
            service.query("SELECT COUNT(*) FROM products WHERE price > 250")
            path = str(tmp_path / "trace.jsonl")
            written = service.export_trace(path)
        assert written > 0
        spans = load_trace_jsonl(path)
        by_trace = {}
        for span in spans:
            by_trace.setdefault(span.trace_id, []).append(span)
        assert len(by_trace) == 2  # one coherent tree per request
        # The executed (non-cached) request threads serve -> engine ->
        # shards into a single tree.
        executed = next(
            members
            for members in by_trace.values()
            if any(s.name == "shard-stream" for s in members)
        )
        names = {s.name for s in executed}
        assert {"serve-request", "serve-queued", "serve-execute",
                "stream", "shard-stream"} <= names
        ids = {s.span_id for s in executed}
        roots = [s for s in executed if s.parent_id not in ids]
        assert [s.name for s in roots] == ["serve-request"]
        execute = next(s for s in executed if s.name == "serve-execute")
        stream = next(s for s in executed if s.name == "stream")
        shard_parents = {
            s.parent_id for s in executed if s.name == "shard-stream"
        }
        assert shard_parents == {stream.span_id}
        engine_roots = {
            s.name for s in executed if s.parent_id == execute.span_id
        }
        assert "stream" in engine_roots

    def test_trace_requests_off_leaves_spans_flat(self):
        from repro.serve import QueryService

        tables = make_tables(rows=400)
        with QueryService(tables, workers=5, trace_requests=False) as service:
            service.query("SELECT COUNT(*) FROM products WHERE price > 250")
            spans = list(service.registry.spans)
        assert spans == []  # serve spans are only recorded when tracing

    def test_span_ring_bounds_service_registry(self):
        from repro.serve import QueryService

        tables = make_tables(rows=400)
        with QueryService(tables, workers=5, max_spans=4) as service:
            for _ in range(6):
                service.query(
                    "SELECT COUNT(*) FROM products WHERE price > 250"
                )
            assert len(service.registry.spans) <= 4
            dropped = service.registry.counter("spans_dropped_total")
            assert dropped.value > 0
