"""Tests for TCAM tables and the APH log machinery (repro.switch.tcam)."""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigurationError, UnsupportedOperationError
from repro.switch.tcam import (
    LogApproxTable,
    TcamTable,
    build_msb_table,
    msb_rule_count,
)


class TestTcamTable:
    def test_exact_rule_matches(self):
        table = TcamTable(width_bits=8)
        table.add(value=0b1010, mask=0xFF, action=1)
        assert table.lookup(0b1010) == 1
        assert table.lookup(0b1011) is None

    def test_wildcard_bits(self):
        table = TcamTable(width_bits=8)
        table.add(value=0b1000, mask=0b1000, action=5)  # match any with bit 3
        assert table.lookup(0b1001) == 5
        assert table.lookup(0b0001) is None

    def test_priority_order(self):
        table = TcamTable(width_bits=8)
        table.add(value=0, mask=0, action=1, priority=0)  # match-all fallback
        table.add(value=0b1, mask=0b1, action=2, priority=10)
        assert table.lookup(0b1) == 2
        assert table.lookup(0b0) == 1

    def test_len(self):
        table = TcamTable()
        table.add(0, 0, 0)
        assert len(table) == 1

    def test_invalid_width(self):
        with pytest.raises(ConfigurationError):
            TcamTable(width_bits=0)


class TestMsbTable:
    def test_matches_bit_length(self):
        table = build_msb_table(64)
        for value in (1, 2, 3, 7, 8, 1023, 1024, (1 << 40) + 5, 1 << 63):
            assert table.lookup(value) == value.bit_length() - 1

    def test_rule_count(self):
        assert len(build_msb_table(32)) == 32
        assert msb_rule_count(64) == 64

    def test_zero_has_no_match(self):
        assert build_msb_table(16).lookup(0) is None


class TestLogApproxTable:
    def test_small_values_near_exact(self):
        table = LogApproxTable(beta=256)
        for a in (1, 2, 3, 100, 65535):
            expected = 256 * math.log2(a)
            assert abs(table.lookup(a) - expected) <= 0.5 if a > 1 else True

    def test_lookup_bounds(self):
        table = LogApproxTable()
        with pytest.raises(UnsupportedOperationError):
            table.lookup(0)
        with pytest.raises(UnsupportedOperationError):
            table.lookup(1 << 16)

    def test_approx_log_small_equals_lookup(self):
        table = LogApproxTable(beta=256)
        assert table.approx_log(1000) == table.lookup(1000)

    def test_approx_log_wide_values(self):
        table = LogApproxTable(beta=256)
        for value in (1 << 16, (1 << 20) + 12345, (1 << 40) + 999, (1 << 63) + 1):
            approx = table.approx_log(value) / 256
            exact = math.log2(value)
            assert abs(approx - exact) <= exact * table.max_relative_error() + 0.01

    def test_approx_log_monotone(self):
        table = LogApproxTable(beta=256)
        values = [1, 5, 100, 70_000, 1 << 20, 1 << 33, 1 << 50]
        logs = [table.approx_log(v) for v in values]
        assert logs == sorted(logs)

    def test_nonpositive_raises(self):
        table = LogApproxTable()
        with pytest.raises(UnsupportedOperationError):
            table.approx_log(0)

    def test_resource_accounting(self):
        table = LogApproxTable()
        assert table.sram_bits() == (1 << 16) * 32
        assert table.tcam_entries() == 64

    def test_beta_scales_precision(self):
        coarse = LogApproxTable(beta=4)
        fine = LogApproxTable(beta=1 << 12)
        assert fine.max_relative_error() < coarse.max_relative_error()

    def test_invalid_beta(self):
        with pytest.raises(ConfigurationError):
            LogApproxTable(beta=0)
