"""Property-based tests (hypothesis) for the library's core invariants.

These encode DESIGN.md §5: the pruning contract for every deterministic
operator on arbitrary streams, one-sidedness of the sketches, soundness of
the formula relaxation, and protocol correctness under arbitrary loss.
"""

from __future__ import annotations

from collections import Counter

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.distinct import DistinctPruner, master_distinct
from repro.core.filtering import And, Atom, FilterPruner, Not, Or, Var
from repro.core.groupby import GroupByPruner, master_groupby
from repro.core.having import HavingPruner, master_having, reference_having
from repro.core.join import JoinPruner, master_join
from repro.core.skyline import SkylinePruner, master_skyline
from repro.core.topn import TopNDeterministicPruner, master_topn
from repro.core.base import PruneDecision
from repro.net.reliability import ReliableTransfer, packets_for
from repro.sketches.bloom import BloomFilter, RegisterBloomFilter
from repro.sketches.cachematrix import CacheMatrix, RollingMinMatrix
from repro.sketches.countmin import CountMinSketch

_SETTINGS = settings(
    max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

keys = st.integers(min_value=0, max_value=30)
values = st.integers(min_value=-100, max_value=100)


class TestPruningContracts:
    """Q(survivors) == Q(D) for every deterministic pruner, any stream."""

    @_SETTINGS
    @given(
        stream=st.lists(keys, max_size=300),
        rows=st.integers(1, 16),
        cols=st.integers(1, 4),
        policy=st.sampled_from(["lru", "fifo"]),
    )
    def test_distinct(self, stream, rows, cols, policy):
        pruner = DistinctPruner(rows=rows, cols=cols, policy=policy)
        survivors = pruner.survivors(stream)
        assert set(master_distinct(survivors)) == set(stream)

    @_SETTINGS
    @given(
        stream=st.lists(st.floats(-1e6, 1e6, allow_nan=False), max_size=300),
        n=st.integers(1, 20),
        thresholds=st.integers(1, 6),
    )
    def test_topn_deterministic(self, stream, n, thresholds):
        pruner = TopNDeterministicPruner(n=n, thresholds=thresholds)
        survivors = pruner.survivors(stream)
        assert sorted(master_topn(survivors, n)) == sorted(master_topn(stream, n))

    @_SETTINGS
    @given(
        stream=st.lists(st.tuples(keys, st.floats(-100, 100, allow_nan=False)), max_size=300),
        rows=st.integers(1, 8),
        cols=st.integers(1, 3),
        aggregate=st.sampled_from(["max", "min"]),
    )
    def test_groupby(self, stream, rows, cols, aggregate):
        pruner = GroupByPruner(aggregate=aggregate, rows=rows, cols=cols)
        survivors = pruner.survivors(stream)
        expected = {}
        for key, value in stream:
            if key not in expected:
                expected[key] = value
            elif aggregate == "max" and value > expected[key]:
                expected[key] = value
            elif aggregate == "min" and value < expected[key]:
                expected[key] = value
        assert master_groupby(survivors, aggregate) == expected

    @_SETTINGS
    @given(
        left=st.lists(st.integers(0, 50), max_size=150),
        right=st.lists(st.integers(0, 50), max_size=150),
        memory=st.sampled_from([256, 4096, 1 << 16]),
        variant=st.sampled_from(["bf", "rbf"]),
    )
    def test_join(self, left, right, memory, variant):
        pruner = JoinPruner("L", "R", memory_bits=memory, variant=variant)
        pruner.build(left, right)
        left_surv = [k for k in left if pruner.process(("L", k)) is PruneDecision.FORWARD]
        right_surv = [k for k in right if pruner.process(("R", k)) is PruneDecision.FORWARD]
        got = Counter(k for k, _, _ in master_join(
            [(k, None) for k in left_surv], [(k, None) for k in right_surv]
        ))
        expected = Counter(k for k, _, _ in master_join(
            [(k, None) for k in left], [(k, None) for k in right]
        ))
        assert got == expected

    @_SETTINGS
    @given(
        stream=st.lists(st.tuples(keys, st.integers(0, 50)), max_size=300),
        threshold=st.integers(0, 200),
        width=st.sampled_from([8, 64, 512]),
    )
    def test_having_sum(self, stream, threshold, width):
        data = [(k, float(v)) for k, v in stream]
        pruner = HavingPruner(threshold=threshold, width=width, depth=3)
        candidates = {
            entry[0]
            for entry in data
            if pruner.process(entry) is PruneDecision.FORWARD
        }
        answer = set(master_having(candidates, data, threshold))
        assert answer == set(reference_having(data, threshold))

    @_SETTINGS
    @given(
        points=st.lists(
            st.tuples(st.integers(0, 1000), st.integers(0, 1000)), max_size=200
        ),
        w=st.integers(1, 8),
        score=st.sampled_from(["sum", "product", "aph"]),
    )
    def test_skyline(self, points, w, score):
        float_points = [(float(a), float(b)) for a, b in points]
        pruner = SkylinePruner(dims=2, points=w, score=score)
        received = []
        for point in float_points:
            if pruner.process(point) is PruneDecision.FORWARD:
                received.append(pruner.last_carried)
        received.extend(pruner.drain())
        assert set(master_skyline(received)) == set(master_skyline(float_points))


class TestSketchInvariants:
    @_SETTINGS
    @given(items=st.lists(st.integers(), max_size=200), size=st.sampled_from([128, 1024]))
    def test_bloom_no_false_negatives(self, items, size):
        bf = BloomFilter(size, hashes=3)
        bf.update(items)
        assert all(item in bf for item in items)

    @_SETTINGS
    @given(items=st.lists(st.integers(), max_size=200))
    def test_register_bloom_no_false_negatives(self, items):
        rbf = RegisterBloomFilter(1 << 12, hashes=3)
        rbf.update(items)
        assert all(item in rbf for item in items)

    @_SETTINGS
    @given(
        pairs=st.lists(st.tuples(keys, st.integers(0, 20)), max_size=200),
        width=st.sampled_from([4, 32, 256]),
        conservative=st.booleans(),
    )
    def test_countmin_one_sided(self, pairs, width, conservative):
        cms = CountMinSketch(width=width, depth=3, conservative=conservative)
        truth: dict = {}
        for key, amount in pairs:
            cms.add(key, amount)
            truth[key] = truth.get(key, 0) + amount
        assert all(cms.estimate(k) >= v for k, v in truth.items())

    @_SETTINGS
    @given(stream=st.lists(keys, max_size=200), rows=st.integers(1, 8), cols=st.integers(1, 4))
    def test_cache_matrix_no_false_positives(self, stream, rows, cols):
        matrix = CacheMatrix(rows, cols)
        seen = set()
        for value in stream:
            hit = matrix.lookup_insert(value)
            if hit:
                assert value in seen
            seen.add(value)

    @_SETTINGS
    @given(
        stream=st.lists(st.floats(-1e6, 1e6, allow_nan=False), max_size=200),
        cols=st.integers(1, 5),
    )
    def test_rolling_min_keeps_w_largest(self, stream, cols):
        matrix = RollingMinMatrix(rows=1, cols=cols)
        for value in stream:
            matrix.offer(value, 0)
        stored = matrix.row_values(0)
        expected = sorted(stream, reverse=True)[: len(stored)]
        assert stored == expected


class TestFormulaRelaxation:
    """Polarity-aware relaxation is sound: original implies relaxed."""

    @staticmethod
    def _formula(structure, atoms):
        """Build a formula from a nested spec of ints/tuples."""
        kind, payload = structure
        if kind == "var":
            return Var(atoms[payload % len(atoms)])
        if kind == "not":
            return Not(TestFormulaRelaxation._formula(payload, atoms))
        children = [TestFormulaRelaxation._formula(c, atoms) for c in payload]
        return And(*children) if kind == "and" else Or(*children)

    formula_spec = st.deferred(
        lambda: st.one_of(
            st.tuples(st.just("var"), st.integers(0, 5)),
            st.tuples(st.just("not"), TestFormulaRelaxation.formula_spec),
            st.tuples(
                st.just("and"),
                st.lists(TestFormulaRelaxation.formula_spec, min_size=1, max_size=3),
            ),
            st.tuples(
                st.just("or"),
                st.lists(TestFormulaRelaxation.formula_spec, min_size=1, max_size=3),
            ),
        )
    )

    @_SETTINGS
    @given(
        spec=formula_spec,
        supported_mask=st.lists(st.booleans(), min_size=6, max_size=6),
        assignment=st.lists(st.booleans(), min_size=6, max_size=6),
    )
    def test_original_implies_relaxed(self, spec, supported_mask, assignment):
        atoms = [
            Atom(
                name=f"x{i}",
                evaluate=(lambda e, i=i: e[i]),
                supported=supported_mask[i],
            )
            for i in range(6)
        ]
        formula = self._formula(spec, atoms)
        relaxed = formula.relax().simplify()
        entry = tuple(assignment)
        if formula.evaluate(entry):
            assert relaxed.evaluate(entry)

    @_SETTINGS
    @given(
        spec=formula_spec,
        supported_mask=st.lists(st.booleans(), min_size=6, max_size=6),
    )
    def test_filter_pruner_never_drops_matching_entries(self, spec, supported_mask):
        atoms = [
            Atom(
                name=f"x{i}",
                evaluate=(lambda e, i=i: e[i]),
                supported=supported_mask[i],
            )
            for i in range(6)
        ]
        formula = self._formula(spec, atoms)
        pruner = FilterPruner(formula)
        for bits in range(64):
            entry = tuple(bool(bits >> i & 1) for i in range(6))
            if formula.evaluate(entry):
                assert pruner.process(entry) is PruneDecision.FORWARD


class TestReliabilityProperties:
    @_SETTINGS
    @given(
        entries=st.lists(st.integers(0, 40), min_size=1, max_size=80),
        loss=st.floats(0.0, 0.45),
        seed=st.integers(0, 1000),
    )
    def test_distinct_correct_under_any_loss(self, entries, loss, seed):
        transfer = ReliableTransfer(
            DistinctPruner(rows=8, cols=2), loss=loss, seed=seed
        )
        transfer.run(packets_for(entries))
        delivered = transfer.master_unique_entries
        assert set(master_distinct(delivered)) == set(entries)

    @_SETTINGS
    @given(
        entries=st.lists(st.integers(1, 10_000), min_size=1, max_size=80),
        loss=st.floats(0.0, 0.4),
        seed=st.integers(0, 1000),
    )
    def test_topn_correct_under_any_loss(self, entries, loss, seed):
        n = 10
        transfer = ReliableTransfer(
            TopNDeterministicPruner(n=n, thresholds=3), loss=loss, seed=seed
        )
        transfer.run(packets_for(entries))
        delivered = [float(e) for e in transfer.master_unique_entries]
        assert sorted(master_topn(delivered, n)) == sorted(
            master_topn([float(e) for e in entries], n)
        )
