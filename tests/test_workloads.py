"""Tests for the workload generators (repro.workloads)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workloads import bigdata, synthetic, tpch


class TestSynthetic:
    def test_random_order_stream_covers_all_distinct(self):
        stream = synthetic.random_order_stream(1000, 200, seed=1)
        assert len(stream) == 1000
        assert len(set(stream)) == 200

    def test_random_order_stream_deterministic(self):
        a = synthetic.random_order_stream(500, 50, seed=2)
        b = synthetic.random_order_stream(500, 50, seed=2)
        assert a == b

    def test_random_order_stream_validation(self):
        with pytest.raises(ConfigurationError):
            synthetic.random_order_stream(10, 20)
        with pytest.raises(ConfigurationError):
            synthetic.random_order_stream(10, 0)

    def test_zipf_keys_skewed(self):
        keys = synthetic.zipf_keys(10_000, 100, skew=1.5, seed=3)
        counts = np.bincount(keys, minlength=100)
        # Rank 0 should be much more frequent than rank 50.
        assert counts[0] > counts[50] * 5

    def test_revenue_stream_positive_heavy_tailed(self):
        values = synthetic.revenue_stream(5000, seed=4)
        assert all(v > 0 for v in values)
        assert max(values) > np.median(values) * 10

    def test_uniform_points_shape(self):
        points = synthetic.uniform_points(100, dims=3, seed=5)
        assert len(points) == 100
        assert all(len(p) == 3 for p in points)

    def test_correlated_points_have_larger_skylines(self):
        from repro.analysis.opt import opt_skyline_unpruned
        from repro.core.skyline import master_skyline

        uniform = synthetic.uniform_points(2000, dims=2, seed=6)
        anti = synthetic.correlated_points(2000, dims=2, seed=6)
        assert len(master_skyline(anti)) > len(master_skyline(uniform))

    def test_keyed_values(self):
        pairs = synthetic.keyed_values(1000, 50, seed=7)
        assert len(pairs) == 1000
        assert all(0 <= k < 50 and v > 0 for k, v in pairs)

    def test_overlapping_key_sets(self):
        left, right = synthetic.overlapping_key_sets(1000, 800, overlap=0.25, seed=8)
        assert len(left) == 1000 and len(right) == 800
        shared = set(left) & set(right)
        assert len(shared) == int(800 * 0.25)

    def test_overlap_validation(self):
        with pytest.raises(ConfigurationError):
            synthetic.overlapping_key_sets(10, 10, overlap=1.5)

    def test_prefixes(self):
        stream = list(range(100))
        parts = synthetic.prefixes(stream, [0.1, 0.5, 1.0])
        assert [len(p) for p in parts] == [10, 50, 100]


class TestBigData:
    @pytest.fixture(scope="class")
    def scale(self):
        return bigdata.BigDataScale(
            rankings_rows=2000, uservisits_rows=4000, distinct_urls=800
        )

    def test_rankings_schema(self, scale):
        table = bigdata.rankings(scale)
        assert set(table.column_names) == {"pageURL", "pageRank", "avgDuration"}
        assert table.num_rows == 2000

    def test_rankings_nearly_sorted(self, scale):
        # The paper notes pageRank is nearly sorted: check strong global
        # order via rank correlation with the row index.
        from scipy.stats import spearmanr

        ranks = bigdata.rankings(scale)["pageRank"]
        rho, _ = spearmanr(np.arange(len(ranks)), ranks)
        assert rho > 0.95

    def test_uservisits_schema(self, scale):
        table = bigdata.uservisits(scale)
        assert "adRevenue" in table and "userAgent" in table
        assert table.num_rows == 4000

    def test_user_agents_skewed(self, scale):
        agents = bigdata.uservisits(scale)["userAgent"]
        counts = np.bincount(agents)
        assert counts.max() > np.median(counts[counts > 0]) * 3

    def test_join_overlap_partial(self, scale):
        tables = bigdata.tables(scale)
        urls = set(tables["Rankings"]["pageURL"].tolist())
        dests = set(tables["UserVisits"]["destURL"].tolist())
        assert urls & dests            # some overlap for the join
        assert dests - urls            # and some unmatched keys to prune

    def test_permuted_changes_order(self, scale):
        table = bigdata.rankings(scale)
        shuffled = bigdata.permuted(table, seed=1)
        assert shuffled["pageRank"].tolist() != table["pageRank"].tolist()

    def test_benchmark_queries_complete(self):
        queries = bigdata.benchmark_queries()
        assert len(queries) == 7
        assert set(queries) == {
            "Q1-filter", "Q2-distinct", "Q3-skyline", "Q4-topn",
            "Q5-groupby", "Q6-join", "Q7-having",
        }

    def test_deterministic_generation(self, scale):
        a = bigdata.uservisits(scale, seed=9)
        b = bigdata.uservisits(scale, seed=9)
        assert a["adRevenue"].tolist() == b["adRevenue"].tolist()


class TestTpch:
    @pytest.fixture(scope="class")
    def scale(self):
        return tpch.TpchScale(customers=300)

    def test_cardinality_ratios(self, scale):
        assert scale.orders == 3000
        assert scale.lineitems == 12_000

    def test_tables_schemas(self, scale):
        tables = tpch.tables(scale)
        assert tables["customer"].num_rows == 300
        assert tables["orders"].num_rows == 3000
        assert tables["lineitem"].num_rows == 12_000

    def test_q3_filters_reduce_rows(self, scale):
        base = tpch.tables(scale)
        filtered = tpch.q3_filtered_tables(base)
        assert filtered["orders"].num_rows < base["orders"].num_rows
        assert filtered["lineitem"].num_rows < base["lineitem"].num_rows

    def test_q3_join_query_runs_verified(self, scale):
        from repro.engine.cluster import Cluster

        base = tpch.tables(scale)
        filtered = tpch.q3_filtered_tables(base)
        result = Cluster(workers=2).run_verified(tpch.q3_join_query(), filtered)
        assert result.pruning_rate > 0.0

    def test_selectivity_sweep_monotone(self, scale):
        base = tpch.tables(scale)
        sweep = tpch.q3_selectivity_sweep(base, [600, 1200, 1800])
        order_counts = [t["orders"].num_rows for _, t in sweep]
        assert order_counts == sorted(order_counts)

    def test_q3_revenue_topn(self, scale):
        base = tpch.tables(scale)
        filtered = tpch.q3_filtered_tables(base)
        items = filtered["lineitem"]
        keys = {int(k): 1 for k in items["l_orderkey"].tolist()[:100]}
        ranked = tpch.q3_revenue_topn(keys, items, n=10)
        assert len(ranked) <= 10
        revenues = [rev for _, rev in ranked]
        assert revenues == sorted(revenues, reverse=True)


class TestStringAgents:
    def test_string_agents_generated(self):
        scale = bigdata.BigDataScale(
            rankings_rows=500, uservisits_rows=1000,
            distinct_user_agents=50, string_agents=True,
        )
        table = bigdata.uservisits(scale)
        agents = table["userAgent"]
        assert agents.dtype.kind in ("U", "O")
        assert any("Mozilla" in a for a in agents.tolist())
        assert len(set(agents.tolist())) <= 50

    def test_distinct_over_string_agents_verified(self):
        from repro.engine.cluster import Cluster

        scale = bigdata.BigDataScale(
            rankings_rows=500, uservisits_rows=2000,
            distinct_urls=400, distinct_user_agents=60, string_agents=True,
        )
        tables = bigdata.tables(scale)
        result = Cluster(workers=3).run_verified(
            bigdata.query2_distinct(), tables
        )
        assert len(result.output) <= 60
        assert all(isinstance(agent, str) for agent in result.output)

    def test_fingerprint_distinct_over_strings(self):
        from repro.engine.cluster import Cluster, ClusterConfig

        scale = bigdata.BigDataScale(
            rankings_rows=500, uservisits_rows=2000,
            distinct_urls=400, distinct_user_agents=60, string_agents=True,
        )
        tables = bigdata.tables(scale)
        cluster = Cluster(workers=2, config=ClusterConfig(distinct_fingerprint=True))
        cluster.run_verified(bigdata.query2_distinct(), tables)
