"""Documentation-coverage checks: every public item carries a docstring.

The deliverable requires doc comments on every public item; this test
walks the package and enforces it mechanically, so regressions fail CI
rather than review.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import pytest

import repro

SKIP_NAMES = {"__main__"}


def _iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        short = info.name.rsplit(".", 1)[-1]
        if short in SKIP_NAMES:
            continue
        yield importlib.import_module(info.name)


MODULES = list(_iter_modules())


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), f"{module.__name__} lacks a docstring"


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_classes_and_functions_documented(module):
    undocumented = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-export; documented at its definition site
        if not (obj.__doc__ and obj.__doc__.strip()):
            undocumented.append(name)
        if inspect.isclass(obj):
            for method_name, method in vars(obj).items():
                if method_name.startswith("_"):
                    continue
                if not inspect.isfunction(method):
                    continue
                if method.__doc__ and method.__doc__.strip():
                    continue
                # An override inherits its contract from a documented base
                # method (standard Python convention).
                inherited = any(
                    getattr(base, method_name, None) is not None
                    and getattr(base, method_name).__doc__
                    for base in obj.__mro__[1:]
                )
                if not inherited:
                    undocumented.append(f"{name}.{method_name}")
    assert not undocumented, (
        f"{module.__name__}: missing docstrings on {sorted(undocumented)}"
    )
