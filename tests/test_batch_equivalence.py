"""Batch dataplane equivalence: every ``*_batch`` path vs its scalar twin.

The vectorized dataplane is an exact reimplementation — same decisions,
same stats, same post-state — not an approximation.  These tests drive
each batch kernel and pruner against the scalar reference on randomized
seeded streams (including str/tuple/fingerprint keys) at several chunk
sizes, then confirm the two instances remain interchangeable by replaying
an identical scalar tail through both.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core.base import PruneDecision, PassthroughPruner
from repro.core.distinct import DistinctPruner, FingerprintDistinctPruner
from repro.core.filtering import FilterPruner
from repro.core.groupby import GroupByPruner
from repro.core.having import HavingPruner
from repro.core.join import AsymmetricJoinPruner, JoinPruner, OuterJoinPruner
from repro.core.skyline import DirectionalSkylinePruner, SkylinePruner
from repro.core.topn import TopNDeterministicPruner, TopNRandomizedPruner
from repro.engine.expressions import col
from repro.errors import ResourceError
from repro.sketches.bloom import BloomFilter, RegisterBloomFilter
from repro.sketches.cachematrix import (
    CacheMatrix,
    KeyedAggregateMatrix,
    RollingMinMatrix,
)
from repro.sketches.countmin import CountMinSketch
from repro.sketches.hashing import (
    canonical_batch,
    canonical_int,
    fingerprint,
    fingerprint_batch,
    hash64,
    hash64_batch,
    hash_family,
    hash_family_batch,
    hash_range,
    hash_range_batch,
)
from repro.switch.pipeline import Phv
from repro.workloads import bigdata, tpch

CHUNKS = (1, 7, 997)


def _scalar_mask(pruner, entries):
    """FORWARD mask from the scalar process() loop."""
    return np.fromiter(
        (pruner.process(entry) is PruneDecision.FORWARD for entry in entries),
        dtype=bool,
        count=len(entries),
    )


def _batch_mask(pruner, entries, chunk, to_batch=None):
    """FORWARD mask from chunked process_batch() calls."""
    parts = []
    for i in range(0, len(entries), chunk):
        piece = entries[i : i + chunk]
        parts.append(pruner.process_batch(to_batch(piece) if to_batch else piece))
    return np.concatenate(parts) if parts else np.zeros(0, dtype=bool)


def _check_pruner(make, entries, tail, to_batch=None, chunks=CHUNKS):
    """Assert batch == scalar decisions, stats, metrics, and post-state.

    ``tail`` is an extra scalar stream replayed through both instances
    after the main stream: identical tail decisions certify that the
    batch path left the pruner in the same state as the scalar path.
    Counters and health gauges are representation-independent, so after
    identical streams the two registries must agree exactly (spans and
    histograms, which carry timings, are deliberately excluded).
    """
    reference = make()
    expected = _scalar_mask(reference, entries)
    expected_tail = _scalar_mask(reference, tail)
    reference.observe_health()
    for chunk in chunks:
        pruner = make()
        got = _batch_mask(pruner, entries, chunk, to_batch)
        assert np.array_equal(got, expected), f"decisions diverge at chunk={chunk}"
        assert pruner.stats.processed == len(entries)
        assert pruner.stats.pruned == int(len(entries) - expected.sum())
        got_tail = _scalar_mask(pruner, tail)
        assert np.array_equal(got_tail, expected_tail), (
            f"post-state diverges at chunk={chunk}"
        )
        pruner.observe_health()
        assert pruner.metrics.counter_values() == reference.metrics.counter_values(), (
            f"metric counters diverge at chunk={chunk}"
        )
        assert pruner.metrics.gauge_values() == reference.metrics.gauge_values(), (
            f"health gauges diverge at chunk={chunk}"
        )


# ---------------------------------------------------------------------------
# Hashing kernels
# ---------------------------------------------------------------------------


class TestHashingBatch:
    def _inputs(self):
        rng = random.Random(7)
        return {
            "small-ints": [rng.randrange(0, 1000) for _ in range(200)],
            "negative-ints": [rng.randrange(-(1 << 63), 1 << 63) for _ in range(200)],
            "huge-ints": [rng.randrange(0, 1 << 80) for _ in range(50)],
            "floats": [rng.uniform(-1e9, 1e9) for _ in range(200)] + [0.0, -0.0],
            "bools": [True, False, True],
            "strings": [f"user-{rng.randrange(10_000)}" for _ in range(200)],
            "bytes": [bytes([i, i ^ 0x5A]) for i in range(100)],
            "tuples": [
                (rng.randrange(100), f"l{rng.randrange(9)}") for _ in range(100)
            ],
            "ndarray-i64": np.asarray(
                [rng.randrange(-(1 << 62), 1 << 62) for _ in range(200)],
                dtype=np.int64,
            ),
            "ndarray-u64": np.asarray(
                [rng.randrange(0, 1 << 64) for _ in range(200)], dtype=np.uint64
            ),
            "ndarray-f64": np.asarray(
                [rng.uniform(-1e12, 1e12) for _ in range(200)], dtype=np.float64
            ),
            "ndarray-bool": np.asarray([True, False] * 20),
        }

    def test_canonical_batch_matches_scalar(self):
        for name, values in self._inputs().items():
            got = canonical_batch(values)
            assert got.dtype == np.uint64, name
            for i, value in enumerate(values):
                assert int(got[i]) == canonical_int(value), (name, i)

    @pytest.mark.parametrize("seed", [0, 1, 0xDEADBEEF, (1 << 64) - 1])
    def test_hash64_batch_matches_scalar(self, seed):
        for name, values in self._inputs().items():
            got = hash64_batch(values, seed)
            for i, value in enumerate(values):
                assert int(got[i]) == hash64(value, seed), (name, i)

    @pytest.mark.parametrize(
        "n", [1, 7, 1024, 10**9 + 7, (1 << 33) + 5, (1 << 63) + 9]
    )
    def test_hash_range_batch_matches_scalar(self, n):
        # Small and huge n exercise both _mulhi64 limb paths.
        for name, values in self._inputs().items():
            got = hash_range_batch(values, n, seed=3)
            for i, value in enumerate(values):
                assert int(got[i]) == hash_range(value, n, seed=3), (name, i)

    @pytest.mark.parametrize("bits", [1, 8, 16, 63, 64])
    def test_fingerprint_batch_matches_scalar(self, bits):
        for name, values in self._inputs().items():
            got = fingerprint_batch(values, bits, seed=5)
            for i, value in enumerate(values):
                assert int(got[i]) == fingerprint(value, bits, seed=5), (name, i)

    def test_hash_family_batch_matches_scalar(self):
        values = list(range(500)) + ["a", "bb", (1, 2.5)]
        scalar_fns = hash_family(4, 1024, base_seed=9)
        batch_fns = hash_family_batch(4, 1024, base_seed=9)
        for scalar_fn, batch_fn in zip(scalar_fns, batch_fns):
            got = batch_fn(values)
            assert [int(x) for x in got] == [scalar_fn(v) for v in values]

    def test_batch_validation_errors(self):
        with pytest.raises(ValueError):
            hash_range_batch([1, 2], 0)
        with pytest.raises(ValueError):
            fingerprint_batch([1, 2], 0)
        with pytest.raises(ValueError):
            fingerprint_batch([1, 2], 65)
        with pytest.raises(ValueError):
            hash_family_batch(0, 16)


# ---------------------------------------------------------------------------
# Sketch batch operations
# ---------------------------------------------------------------------------


class TestSketchBatch:
    def test_bloom_add_contains_batch(self):
        rng = random.Random(11)
        inserts = [rng.randrange(0, 5000) for _ in range(2000)]
        probes = [rng.randrange(0, 10_000) for _ in range(2000)] + ["k1", "k2"]
        str_inserts = [f"s{v}" for v in inserts[:300]] + ["k1"]
        scalar = BloomFilter(size_bits=1 << 14, hashes=3, seed=4)
        batch = BloomFilter(size_bits=1 << 14, hashes=3, seed=4)
        for value in inserts + str_inserts:
            scalar.add(value)
        batch.add_batch(inserts)
        batch.add_batch(str_inserts)
        assert bytes(batch._words) == bytes(scalar._words)
        assert batch.inserted == scalar.inserted
        got = batch.contains_batch(probes)
        assert [bool(x) for x in got] == [p in scalar for p in probes]

    def test_register_bloom_add_contains_batch(self):
        rng = random.Random(12)
        inserts = [rng.randrange(0, 5000) for _ in range(2000)]
        probes = [rng.randrange(0, 10_000) for _ in range(2000)]
        scalar = RegisterBloomFilter(size_bits=1 << 14, hashes=3, seed=4)
        batch = RegisterBloomFilter(size_bits=1 << 14, hashes=3, seed=4)
        for value in inserts:
            scalar.add(value)
        batch.add_batch(inserts)
        assert np.array_equal(batch._registers, scalar._registers)
        got = batch.contains_batch(probes)
        assert [bool(x) for x in got] == [p in scalar for p in probes]

    @pytest.mark.parametrize("conservative", [False, True])
    def test_countmin_add_batch_running_estimates(self, conservative):
        rng = random.Random(13)
        keys = [rng.randrange(0, 200) for _ in range(3000)]
        keys += [f"k{v}" for v in keys[:200]]
        amounts = [rng.randrange(0, 9) for _ in range(len(keys))]
        scalar = CountMinSketch(width=256, depth=3, conservative=conservative, seed=2)
        batch = CountMinSketch(width=256, depth=3, conservative=conservative, seed=2)
        expected = [scalar.add(k, a) for k, a in zip(keys, amounts)]
        got = batch.add_batch(keys, np.asarray(amounts, dtype=np.int64))
        assert [int(x) for x in got] == expected
        assert np.array_equal(batch._rows, scalar._rows)
        assert batch.total == scalar.total
        probes = list(range(250))
        est = batch.estimate_batch(probes)
        assert [int(x) for x in est] == [scalar.estimate(p) for p in probes]

    @pytest.mark.parametrize("policy", ["lru", "fifo"])
    def test_cachematrix_lookup_insert_batch(self, policy):
        rng = random.Random(14)
        values = [rng.randrange(0, 500) for _ in range(3000)]
        values += [(v, f"s{v % 7}") for v in values[:300]]
        scalar = CacheMatrix(rows=64, cols=4, policy=policy, seed=3)
        batch = CacheMatrix(rows=64, cols=4, policy=policy, seed=3)
        expected = [scalar.lookup_insert(v) for v in values]
        got = batch.lookup_insert_batch(values)
        assert [bool(x) for x in got] == expected
        assert batch._cells == scalar._cells

    def test_rollingmin_offer_batch(self):
        rng = random.Random(15)
        values = [rng.uniform(0, 1e6) for _ in range(3000)]
        rows = np.asarray([rng.randrange(0, 32) for _ in values], dtype=np.int64)
        scalar = RollingMinMatrix(rows=32, cols=4)
        batch = RollingMinMatrix(rows=32, cols=4)
        expected = [scalar.offer(v, int(r)) for v, r in zip(values, rows)]
        got = batch.offer_batch(np.asarray(values), rows)
        assert [bool(x) for x in got] == expected
        assert batch._cells == scalar._cells

    def test_keyed_aggregate_observe_batch(self):
        rng = random.Random(16)
        keys = [rng.randrange(0, 300) for _ in range(3000)]
        values = [rng.uniform(0, 1e4) for _ in keys]
        for better in (lambda new, old: new > old, lambda new, old: new < old):
            scalar = KeyedAggregateMatrix(rows=64, cols=4, better=better, seed=5)
            batch = KeyedAggregateMatrix(rows=64, cols=4, better=better, seed=5)
            expected = [scalar.observe(k, v) for k, v in zip(keys, values)]
            got = batch.observe_batch(
                np.asarray(keys, dtype=np.int64), np.asarray(values)
            )
            assert [bool(x) for x in got] == expected
            assert batch._cells == scalar._cells


# ---------------------------------------------------------------------------
# Pruner process_batch equivalence
# ---------------------------------------------------------------------------


class TestPrunerBatchEquivalence:
    def test_passthrough(self):
        entries = list(range(100))
        _check_pruner(PassthroughPruner, entries, entries[:10])

    def test_filter_rows_and_columnar(self):
        rng = random.Random(21)
        rows = [(rng.uniform(0, 1000), rng.randrange(0, 50)) for _ in range(4000)]
        tail = rows[:200]
        expr = (col("price") > 300.0) & (col("qty") <= 24)
        formula = expr.to_formula(["price", "qty"])
        _check_pruner(lambda: FilterPruner(formula), rows, tail)
        price = np.asarray([r[0] for r in rows])
        qty = np.asarray([r[1] for r in rows], dtype=np.int64)
        pruner = FilterPruner(formula)
        columnar = pruner.process_batch((price, qty))
        assert np.array_equal(columnar, _scalar_mask(FilterPruner(formula), rows))

    def test_filter_with_unsupported_like(self):
        rng = random.Random(22)
        rows = [
            (rng.uniform(0, 100), rng.choice(["en-US", "fr-FR", "en-GB"]))
            for _ in range(1500)
        ]
        expr = (col("adRevenue") > 20.0) & col("language").like("en-%")
        formula = expr.to_formula(["adRevenue", "language"])
        _check_pruner(
            lambda: FilterPruner(formula, worker_assist=True), rows, rows[:100]
        )

    @pytest.mark.parametrize("policy", ["lru", "fifo"])
    def test_distinct_int_and_str(self, policy):
        rng = random.Random(23)
        ints = [rng.randrange(0, 600) for _ in range(4000)]
        _check_pruner(
            lambda: DistinctPruner(rows=128, cols=2, policy=policy), ints, ints[:300]
        )
        strs = [f"url-{v}" for v in ints]
        _check_pruner(
            lambda: DistinctPruner(rows=128, cols=2, policy=policy), strs, strs[:300]
        )

    def test_distinct_ndarray_batch_form(self):
        rng = random.Random(24)
        ints = [rng.randrange(0, 600) for _ in range(4000)]
        arr = np.asarray(ints, dtype=np.int64)
        scalar = DistinctPruner(rows=128, cols=2)
        expected = _scalar_mask(scalar, ints)
        batch = DistinctPruner(rows=128, cols=2)
        assert np.array_equal(batch.process_batch(arr), expected)
        assert batch._matrix._cells == scalar._matrix._cells

    def test_fingerprint_distinct_tuple_keys(self):
        rng = random.Random(25)
        entries = [
            (rng.randrange(0, 50), f"ua{rng.randrange(12)}", rng.randrange(3))
            for _ in range(4000)
        ]
        _check_pruner(
            lambda: FingerprintDistinctPruner(rows=128, cols=2, fingerprint_bits=16),
            entries,
            entries[:300],
        )

    def test_topn_deterministic_with_warmup(self):
        rng = random.Random(26)
        values = [rng.uniform(0, 1e6) for _ in range(4000)]
        # chunk=1 crosses warmup one entry at a time; chunk=4000 crosses
        # it inside a single batch call.
        _check_pruner(
            lambda: TopNDeterministicPruner(n=250, thresholds=4),
            values,
            values[:300],
            chunks=(1, 7, 997, 4000),
        )

    def test_topn_randomized_rng_sequence(self):
        rng = random.Random(27)
        values = [rng.uniform(0, 1e6) for _ in range(3000)]
        _check_pruner(
            lambda: TopNRandomizedPruner(n=100, rows=600, delta=1e-4, seed=9),
            values,
            values[:200],
        )

    def test_groupby_pairs_and_columnar(self):
        rng = random.Random(28)
        pairs = [(rng.randrange(0, 200), rng.uniform(0, 1e4)) for _ in range(4000)]
        _check_pruner(lambda: GroupByPruner(rows=128, cols=4), pairs, pairs[:300])
        keys = np.asarray([p[0] for p in pairs], dtype=np.int64)
        values = np.asarray([p[1] for p in pairs])
        batch = GroupByPruner(rows=128, cols=4)
        got = batch.process_batch((keys, values))
        assert np.array_equal(got, _scalar_mask(GroupByPruner(rows=128, cols=4), pairs))

    @pytest.mark.parametrize(
        "aggregate,threshold", [("sum", 5000.0), ("count", 10), ("max", 8000.0), ("min", 50.0)]
    )
    @pytest.mark.parametrize("conservative", [False, True])
    def test_having_all_aggregates(self, aggregate, threshold, conservative):
        rng = random.Random(29)
        pairs = [(rng.randrange(0, 150), rng.uniform(0, 1e3)) for _ in range(3000)]
        pairs += [(f"k{k}", v) for k, v in pairs[:200]]
        _check_pruner(
            lambda: HavingPruner(
                threshold=threshold,
                aggregate=aggregate,
                width=256,
                depth=3,
                conservative=conservative,
            ),
            pairs,
            pairs[:200],
        )

    def test_join_mixed_sides_and_columnar(self):
        rng = random.Random(30)
        left = [rng.randrange(0, 3000) for _ in range(1500)]
        right = [rng.randrange(1500, 4500) for _ in range(1500)]
        stream = [(rng.choice("LR"), rng.randrange(0, 4500)) for _ in range(4000)]

        def make():
            pruner = JoinPruner("L", "R", memory_bits=1 << 16)
            pruner.build(left, right)
            return pruner

        _check_pruner(make, stream, stream[:300])
        keys = np.asarray([k for _, k in stream], dtype=np.int64)
        sides = [s for s, _ in stream]
        only_left = np.asarray(
            [k for s, k in stream if s == "L"], dtype=np.int64
        )
        batch = make()
        got = batch.process_batch(("L", only_left))
        expected = _scalar_mask(make(), [("L", int(k)) for k in only_left])
        assert np.array_equal(got, expected)
        assert sides  # mixed stream sanity

    def test_join_unbuilt_raises(self):
        pruner = JoinPruner("L", "R", memory_bits=1 << 16)
        with pytest.raises(Exception):
            pruner.process_batch([("L", 1)])
        with pytest.raises(Exception):
            pruner.process_batch([])

    def test_asymmetric_join(self):
        rng = random.Random(31)
        small = [rng.randrange(0, 800) for _ in range(500)]
        probes = [rng.randrange(0, 2000) for _ in range(4000)]

        def make():
            pruner = AsymmetricJoinPruner(memory_bits=1 << 16)
            pruner.build_from_small_table(small)
            return pruner

        _check_pruner(make, probes, probes[:300])

    def test_outer_join_preserved_and_probed(self):
        rng = random.Random(32)
        left = [rng.randrange(0, 2000) for _ in range(1000)]
        right = [rng.randrange(1000, 3000) for _ in range(1000)]
        stream = [(rng.choice("LR"), rng.randrange(0, 3000)) for _ in range(4000)]

        def make():
            pruner = OuterJoinPruner("L", "R", preserved="left", memory_bits=1 << 16)
            pruner.build(left, right)
            return pruner

        _check_pruner(make, stream, stream[:300])
        # Inner stats must match too (scalar double-accounting preserved).
        reference, batch = make(), make()
        for entry in stream:
            reference.process(entry)
        batch.process_batch(stream)
        assert batch._inner.stats.processed == reference._inner.stats.processed
        assert batch._inner.stats.pruned == reference._inner.stats.pruned

    @pytest.mark.parametrize("score", ["sum", "product", "aph", "baseline"])
    def test_skyline_scores(self, score):
        rng = random.Random(33)
        points = [
            (float(rng.randrange(0, 1 << 12)), float(rng.randrange(0, 1 << 12)))
            for _ in range(1500)
        ]
        _check_pruner(
            lambda: SkylinePruner(dims=2, points=10, score=score),
            points,
            points[:100],
        )

    def test_skyline_carried_points_match_drain(self):
        rng = random.Random(34)
        points = np.asarray(
            [[rng.randrange(0, 1 << 10) for _ in range(3)] for _ in range(1000)],
            dtype=np.float64,
        )
        rows = [tuple(p) for p in points.tolist()]
        scalar = SkylinePruner(dims=3, points=8, score="sum")
        batch = SkylinePruner(dims=3, points=8, score="sum")
        for row in rows:
            scalar.process(row)
        batch.process_batch(points)
        assert batch.drain() == scalar.drain()
        assert batch.stored_scores() == scalar.stored_scores()

    def test_directional_skyline(self):
        rng = random.Random(35)
        points = [
            (float(rng.randrange(0, 1 << 10)), float(rng.randrange(0, 1 << 10)))
            for _ in range(1500)
        ]
        _check_pruner(
            lambda: DirectionalSkylinePruner(
                directions=("min", "max"), bounds=(1024.0, 1024.0), points=10
            ),
            points,
            points[:100],
        )


# ---------------------------------------------------------------------------
# Batch-aware stream helpers and the Phv satellite
# ---------------------------------------------------------------------------


class TestStreamHelpers:
    def test_survivors_batch_matches_scalar(self):
        rng = random.Random(41)
        stream = [rng.randrange(0, 400) for _ in range(3000)]
        expected = DistinctPruner(rows=128, cols=2).survivors(stream)
        for batch_size in (1, 64, 5000):
            got = DistinctPruner(rows=128, cols=2).survivors(
                stream, batch_size=batch_size
            )
            assert got == expected

    def test_survivors_batch_accepts_generators(self):
        stream = list(range(500)) * 3
        expected = DistinctPruner(rows=128, cols=2).survivors(stream)
        got = DistinctPruner(rows=128, cols=2).survivors(
            iter(stream), batch_size=97
        )
        assert got == expected

    def test_split_stream_batch_matches_scalar(self):
        rng = random.Random(42)
        stream = [rng.uniform(0, 1e5) for _ in range(2000)]
        fwd_a, pruned_a = TopNDeterministicPruner(n=100).split_stream(stream)
        fwd_b, pruned_b = TopNDeterministicPruner(n=100).split_stream(
            stream, batch_size=53
        )
        assert fwd_a == fwd_b
        assert pruned_a == pruned_b

    def test_prune_stream_batch_pairs(self):
        rng = random.Random(43)
        stream = [rng.randrange(0, 300) for _ in range(1500)]
        scalar = list(DistinctPruner(rows=64, cols=2).prune_stream(stream))
        batched = list(
            DistinctPruner(rows=64, cols=2).prune_stream(stream, batch_size=41)
        )
        assert scalar == batched


class TestPhvUsedBits:
    def test_used_bits_running_counter(self):
        phv = Phv(budget_bits=64)
        assert phv.used_bits == 0
        phv.declare("a", 16)
        phv.declare("b", 32)
        assert phv.used_bits == 48
        phv.declare("c", 16)
        assert phv.used_bits == 64

    def test_declare_over_budget_raises(self):
        phv = Phv(budget_bits=32)
        phv.declare("a", 24)
        with pytest.raises(ResourceError):
            phv.declare("b", 16)
        # Failed declaration must not charge the budget.
        assert phv.used_bits == 24
        phv.declare("c", 8)
        assert phv.used_bits == 32


# ---------------------------------------------------------------------------
# Cluster batch streaming
# ---------------------------------------------------------------------------


class TestClusterBatchStreaming:
    @pytest.fixture(scope="class")
    def bigdata_tables(self):
        scale = bigdata.BigDataScale(
            rankings_rows=2000,
            uservisits_rows=4000,
            distinct_urls=800,
            distinct_user_agents=80,
            distinct_languages=12,
        )
        return bigdata.tables(scale, seed=17)

    def _phases(self, result):
        return [(p.name, p.streamed, p.forwarded) for p in result.phases]

    @pytest.mark.parametrize("batch_size", [7, 1000])
    def test_bigdata_queries_batch_equals_scalar(self, bigdata_tables, batch_size):
        from repro.engine.cluster import Cluster, ClusterConfig

        queries = bigdata.benchmark_queries()
        queries["Q7-having"] = bigdata.query7_having(threshold=4000.0)
        scalar_cluster = Cluster(workers=3)
        batch_cluster = Cluster(
            workers=3, config=ClusterConfig(batch_size=batch_size)
        )
        for name, query in queries.items():
            run_tables = dict(bigdata_tables)
            if name == "Q3-skyline":
                run_tables["Rankings"] = bigdata.permuted(run_tables["Rankings"])
            scalar = scalar_cluster.run(query, run_tables)
            batch = batch_cluster.run(query, run_tables)
            assert batch.output == scalar.output, name
            assert self._phases(batch) == self._phases(scalar), name

    def test_bigdata_no_cheetah_baseline(self, bigdata_tables):
        from repro.engine.cluster import Cluster, ClusterConfig

        query = bigdata.query1_filter_count()
        scalar = Cluster(workers=3).run(query, bigdata_tables, use_cheetah=False)
        batch = Cluster(workers=3, config=ClusterConfig(batch_size=256)).run(
            query, bigdata_tables, use_cheetah=False
        )
        assert batch.output == scalar.output
        assert self._phases(batch) == self._phases(scalar)

    @pytest.mark.parametrize("bad", [0, -5])
    def test_invalid_batch_size_rejected(self, bad):
        from repro.engine.cluster import ClusterConfig
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            ClusterConfig(batch_size=bad)

    def test_tpch_q3_join_batch_equals_scalar(self):
        from repro.engine.cluster import Cluster, ClusterConfig

        base = tpch.tables(tpch.TpchScale(customers=300), seed=3)
        filtered = tpch.q3_filtered_tables(base)
        scalar = Cluster(workers=2).run(tpch.q3_join_query(), filtered)
        batch = Cluster(workers=2, config=ClusterConfig(batch_size=512)).run(
            tpch.q3_join_query(), filtered
        )
        assert batch.output == scalar.output
        assert self._phases(batch) == self._phases(scalar)
