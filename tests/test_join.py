"""Tests for JOIN pruning (repro.core.join)."""

from __future__ import annotations

import pytest

from repro.core.base import Guarantee, PruneDecision
from repro.core.join import AsymmetricJoinPruner, JoinPruner, master_join
from repro.errors import ConfigurationError
from repro.workloads.synthetic import overlapping_key_sets

MB8 = 1024 * 1024 * 8


def _probe_all(pruner, left, right):
    left_survivors = [k for k in left if pruner.process(("A", k)) is PruneDecision.FORWARD]
    right_survivors = [k for k in right if pruner.process(("B", k)) is PruneDecision.FORWARD]
    return left_survivors, right_survivors


class TestJoinPruner:
    def _pruner(self, **kwargs):
        defaults = dict(left="A", right="B", memory_bits=MB8, hashes=3)
        defaults.update(kwargs)
        return JoinPruner(**defaults)

    def test_matching_key_forwarded(self):
        pruner = self._pruner()
        pruner.build([1, 2, 3], [2, 3, 4])
        assert pruner.process(("A", 2)) is PruneDecision.FORWARD

    def test_non_matching_key_pruned(self):
        pruner = self._pruner()
        pruner.build([1, 2, 3], [200, 300])
        assert pruner.process(("A", 1)) is PruneDecision.PRUNE

    def test_process_before_build_raises(self):
        pruner = self._pruner()
        with pytest.raises(ConfigurationError):
            pruner.process(("A", 1))

    def test_no_false_negatives_ever(self):
        # The correctness property: a matched entry is never pruned.
        left, right = overlapping_key_sets(2000, 2000, overlap=0.2, seed=3)
        pruner = self._pruner(memory_bits=1 << 16)  # small: many FPs
        pruner.build(left, right)
        left_surv, right_surv = _probe_all(pruner, left, right)
        right_set = set(right)
        left_set = set(left)
        assert all(k in left_surv or k not in right_set for k in left)
        # Every truly matching key must survive on both sides.
        matches = left_set & right_set
        assert matches <= set(left_surv)
        assert matches <= set(right_surv)

    @pytest.mark.parametrize("variant", ["bf", "rbf"])
    def test_join_output_equals_reference(self, variant):
        left, right = overlapping_key_sets(1500, 1500, overlap=0.1, seed=5)
        pruner = self._pruner(variant=variant)
        pruner.build(left, right)
        left_surv, right_surv = _probe_all(pruner, left, right)
        got = master_join(
            [(k, ("L", k)) for k in left_surv], [(k, ("R", k)) for k in right_surv]
        )
        expected = master_join(
            [(k, ("L", k)) for k in left], [(k, ("R", k)) for k in right]
        )
        assert sorted(got) == sorted(expected)

    def test_pruning_rate_reasonable_with_big_filter(self):
        left, right = overlapping_key_sets(3000, 3000, overlap=0.1, seed=7)
        pruner = self._pruner(memory_bits=MB8)
        pruner.build(left, right)
        left_surv, right_surv = _probe_all(pruner, left, right)
        survived = len(left_surv) + len(right_surv)
        # ~10% match; with 1MB+ filters FPs are negligible at this scale.
        assert survived <= len(left) + len(right)
        assert survived / (len(left) + len(right)) < 0.15

    def test_small_filter_lowers_pruning_not_correctness(self):
        left, right = overlapping_key_sets(2000, 2000, overlap=0.1, seed=9)
        big = self._pruner(memory_bits=MB8, seed=1)
        small = self._pruner(memory_bits=1 << 12, seed=1)
        big.build(left, right)
        small.build(left, right)
        big_surv = sum(len(s) for s in _probe_all(big, left, right))
        small_surv = sum(len(s) for s in _probe_all(small, left, right))
        assert small_surv >= big_surv

    def test_observe_build_streaming_interface(self):
        pruner = self._pruner()
        pruner.observe_build("A", 1)
        pruner.observe_build("B", 1)
        pruner.seal()
        assert pruner.process(("A", 1)) is PruneDecision.FORWARD

    def test_unknown_side_raises(self):
        pruner = self._pruner()
        pruner.build([1], [1])
        with pytest.raises(ConfigurationError):
            pruner.observe_build("C", 1)

    def test_same_side_names_rejected(self):
        with pytest.raises(ConfigurationError):
            JoinPruner(left="A", right="A")

    def test_reset(self):
        pruner = self._pruner()
        pruner.build([1], [1])
        pruner.reset()
        with pytest.raises(ConfigurationError):
            pruner.process(("A", 1))

    def test_guarantee(self):
        assert self._pruner().guarantee is Guarantee.DETERMINISTIC

    @pytest.mark.parametrize("variant,stages", [("bf", 2), ("rbf", 1)])
    def test_footprint_variant(self, variant, stages):
        fp = self._pruner(variant=variant).footprint()
        assert fp.stages == stages


class TestAsymmetricJoinPruner:
    def test_small_table_builds_filter(self):
        pruner = AsymmetricJoinPruner(memory_bits=1 << 16)
        count = pruner.build_from_small_table([1, 2, 3])
        assert count == 3
        assert pruner.process(2) is PruneDecision.FORWARD
        assert pruner.process(99) is PruneDecision.PRUNE

    def test_no_false_negatives(self):
        small = list(range(500))
        pruner = AsymmetricJoinPruner(memory_bits=1 << 14)
        pruner.build_from_small_table(small)
        assert all(pruner.process(k) is PruneDecision.FORWARD for k in small)

    def test_full_memory_gives_low_fp(self):
        small = list(range(1000))
        pruner = AsymmetricJoinPruner(memory_bits=MB8)
        pruner.build_from_small_table(small)
        fps = sum(
            1
            for k in range(10**6, 10**6 + 20_000)
            if pruner.process(k) is PruneDecision.FORWARD
        )
        assert fps / 20_000 < 0.001

    def test_process_before_build_raises(self):
        with pytest.raises(ConfigurationError):
            AsymmetricJoinPruner().process(1)

    def test_reset(self):
        pruner = AsymmetricJoinPruner()
        pruner.build_from_small_table([1])
        pruner.reset()
        with pytest.raises(ConfigurationError):
            pruner.process(1)


class TestMasterJoin:
    def test_inner_join_semantics(self):
        left = [(1, "a"), (2, "b")]
        right = [(2, "x"), (3, "y"), (2, "z")]
        result = master_join(left, right)
        assert sorted(result) == [(2, "b", "x"), (2, "b", "z")]

    def test_duplicate_left_keys_multiply(self):
        left = [(1, "a"), (1, "b")]
        right = [(1, "x")]
        assert len(master_join(left, right)) == 2

    def test_empty_sides(self):
        assert master_join([], [(1, "x")]) == []
        assert master_join([(1, "x")], []) == []


class TestOuterJoinPruner:
    def _pruner(self, preserved="left", **kwargs):
        from repro.core.join import OuterJoinPruner

        defaults = dict(left="A", right="B", memory_bits=1 << 16)
        defaults.update(kwargs)
        return OuterJoinPruner(preserved=preserved, **defaults)

    def test_preserved_side_never_pruned(self):
        pruner = self._pruner("left")
        pruner.build([1, 2, 3], [100, 200])
        # Left rows have no match, but LEFT OUTER must keep them all.
        for key in (1, 2, 3):
            assert pruner.process(("A", key)) is PruneDecision.FORWARD

    def test_other_side_pruned_on_miss(self):
        pruner = self._pruner("left")
        pruner.build([1, 2, 3], [3, 100])
        assert pruner.process(("B", 100)) is PruneDecision.PRUNE
        assert pruner.process(("B", 3)) is PruneDecision.FORWARD

    def test_right_outer_direction(self):
        pruner = self._pruner("right")
        pruner.build([1, 100], [1, 2])
        assert pruner.process(("B", 2)) is PruneDecision.FORWARD  # preserved
        assert pruner.process(("A", 100)) is PruneDecision.PRUNE

    def test_invalid_preserved_side(self):
        from repro.core.join import OuterJoinPruner

        with pytest.raises(ConfigurationError):
            OuterJoinPruner(left="A", right="B", preserved="middle")

    def test_outer_join_output_matches_reference(self):
        from repro.core.join import OuterJoinPruner, master_outer_join

        left, right = overlapping_key_sets(800, 800, overlap=0.2, seed=13)
        pruner = OuterJoinPruner(left="A", right="B", memory_bits=1 << 16)
        pruner.build(left, right)
        left_surv = [k for k in left if pruner.process(("A", k)) is PruneDecision.FORWARD]
        right_surv = [k for k in right if pruner.process(("B", k)) is PruneDecision.FORWARD]
        got = master_outer_join(
            [(k, k) for k in left_surv], [(k, k) for k in right_surv]
        )
        expected = master_outer_join([(k, k) for k in left], [(k, k) for k in right])
        assert sorted(got, key=repr) == sorted(expected, key=repr)


class TestMasterOuterJoin:
    def test_left_unmatched_padded_with_none(self):
        from repro.core.join import master_outer_join

        result = master_outer_join([(1, "a"), (2, "b")], [(2, "x")])
        assert sorted(result, key=repr) == [(1, "a", None), (2, "b", "x")]

    def test_right_outer_flips(self):
        from repro.core.join import master_outer_join

        result = master_outer_join([(2, "b")], [(1, "x"), (2, "y")], preserved="right")
        assert sorted(result, key=repr) == [(1, None, "x"), (2, "b", "y")]

    def test_invalid_side(self):
        from repro.core.join import master_outer_join

        with pytest.raises(ConfigurationError):
            master_outer_join([], [], preserved="full")
