"""Tests for the register-level pipeline programs (repro.switch.programs)."""

from __future__ import annotations

import random

import pytest

from repro.core.distinct import DistinctPruner, master_distinct
from repro.core.topn import master_topn
from repro.errors import ConfigurationError, ResourceError
from repro.switch.pipeline import Pipeline
from repro.switch.programs import PipelineDistinct, PipelineTopNDeterministic
from repro.switch.resources import ResourceModel
from repro.workloads.synthetic import random_order_stream


def _pipeline(stages=8, alus=4, sram_kb=512):
    return Pipeline(
        ResourceModel(
            stages=stages,
            alus_per_stage=alus,
            sram_bits_per_stage=sram_kb * 1024 * 8,
            tcam_entries=64,
            phv_bits=512,
        )
    )


class TestPipelineDistinct:
    def test_first_occurrence_forwarded_duplicate_pruned(self):
        program = PipelineDistinct(_pipeline(), rows=16, cols=2)
        assert program.process(7) is True
        assert program.process(7) is False
        assert program.process(8) is True

    def test_no_false_positives(self):
        # The hardware variant may miss duplicates (evictions) but must
        # never prune a first occurrence.
        program = PipelineDistinct(_pipeline(), rows=8, cols=2, seed=3)
        rng = random.Random(1)
        seen = set()
        for _ in range(2000):
            value = rng.randrange(300)
            forwarded = program.process(value)
            if not forwarded:
                assert value in seen
            seen.add(value)

    def test_distinct_contract_end_to_end(self):
        stream = random_order_stream(3000, 250, seed=5)
        program = PipelineDistinct(_pipeline(), rows=64, cols=3)
        survivors = program.survivors(stream)
        assert set(master_distinct(survivors)) == set(stream)

    def test_decisions_identical_to_sketch_lru(self):
        # The register program implements the paper's LRU exactly, so its
        # per-entry decisions must match the CacheMatrix model bit for bit
        # (same row hash, same replacement).
        stream = random_order_stream(5000, 200, seed=7)
        program = PipelineDistinct(_pipeline(), rows=256, cols=2, seed=7)
        sketch = DistinctPruner(rows=256, cols=2, policy="lru", seed=7)
        from repro.core.base import PruneDecision

        for value in stream:
            hardware = program.process(value)
            model = sketch.process(value) is PruneDecision.FORWARD
            assert hardware == model, f"divergence at value {value}"

    def test_value_zero_supported(self):
        # The +1 encoding must keep value 0 distinct from empty cells.
        program = PipelineDistinct(_pipeline(), rows=4, cols=2)
        assert program.process(0) is True
        assert program.process(0) is False

    def test_negative_values_rejected(self):
        program = PipelineDistinct(_pipeline(), rows=4, cols=2)
        with pytest.raises(ConfigurationError):
            program.process(-1)

    def test_too_many_cols_for_hardware(self):
        with pytest.raises(ConfigurationError):
            PipelineDistinct(_pipeline(stages=2), rows=4, cols=3)

    def test_sram_budget_enforced(self):
        # A row count whose register exceeds per-stage SRAM must fail.
        with pytest.raises(ResourceError):
            PipelineDistinct(_pipeline(sram_kb=1), rows=1 << 16, cols=1)

    def test_one_alu_op_per_stage(self):
        # The compare-and-shift is a single metered RMW per stage, so it
        # runs even on a 1-ALU-per-stage switch.
        program = PipelineDistinct(_pipeline(alus=1), rows=8, cols=2)
        assert program.process(1) is True

    def test_pipeline_stats_track_pruning(self):
        pipeline = _pipeline()
        program = PipelineDistinct(pipeline, rows=8, cols=2)
        for value in (1, 1, 2, 2, 3):
            program.process(value)
        assert pipeline.stats.packets == 5
        assert pipeline.stats.pruned == 2


class TestPipelineTopN:
    def test_warmup_forwards_first_n(self):
        program = PipelineTopNDeterministic(_pipeline(), n=3, thresholds=2)
        assert program.process(50) is True
        assert program.process(40) is True
        assert program.process(90) is True

    def test_below_t0_pruned_after_warmup(self):
        program = PipelineTopNDeterministic(_pipeline(), n=3, thresholds=2)
        for value in (50, 40, 90):
            program.process(value)
        assert program.process(10) is False  # < t0 = 40
        assert program.process(45) is True

    def test_ladder_activates_with_counters(self):
        program = PipelineTopNDeterministic(_pipeline(), n=2, thresholds=3)
        program.process(4)
        program.process(4)  # t0 = 4 (encoded 5); ladder 5, 10, 20 encoded
        # Feed large values to activate the second rung (threshold 2*t0).
        for value in (30, 30, 30):
            assert program.process(value) is True
        # Now a value between t0 and 2*t0 gets pruned by the active rung.
        assert program.process(6) is False

    def test_topn_contract_on_random_streams(self):
        rng = random.Random(9)
        for trial in range(3):
            stream = [rng.randrange(1, 100_000) for _ in range(2000)]
            program = PipelineTopNDeterministic(_pipeline(), n=50, thresholds=4)
            survivors = program.survivors(stream)
            assert sorted(master_topn(survivors, 50)) == sorted(
                master_topn(stream, 50)
            )

    def test_contract_on_descending_stream(self):
        stream = list(range(3000, 0, -1))
        program = PipelineTopNDeterministic(_pipeline(), n=20, thresholds=4)
        survivors = program.survivors(stream)
        assert sorted(master_topn(survivors, 20)) == sorted(master_topn(stream, 20))
        assert len(survivors) < len(stream) * 0.2  # descending prunes hard

    def test_needs_thresholds_plus_one_stages(self):
        with pytest.raises(ConfigurationError):
            PipelineTopNDeterministic(_pipeline(stages=3), n=5, thresholds=3)

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            PipelineTopNDeterministic(_pipeline(), n=0)
        with pytest.raises(ConfigurationError):
            PipelineTopNDeterministic(_pipeline(), n=5, thresholds=0)

    def test_runs_on_two_alus_per_stage(self):
        # Warmup stage needs two RMW ops (count + min); rungs need one.
        program = PipelineTopNDeterministic(_pipeline(alus=2), n=3, thresholds=2)
        for value in (5, 6, 7, 1, 9):
            program.process(value)


class TestPipelineGroupBy:
    def _program(self, rows=16, cols=3, aggregate="max", alus=4):
        from repro.switch.programs import PipelineGroupBy

        return PipelineGroupBy(
            _pipeline(alus=alus), rows=rows, cols=cols, aggregate=aggregate
        )

    def test_first_occurrence_forwarded(self):
        program = self._program()
        assert program.process(1, 10) is True

    def test_non_improving_pruned_improving_forwarded(self):
        program = self._program()
        program.process(1, 10)
        assert program.process(1, 5) is False
        assert program.process(1, 20) is True

    def test_min_direction(self):
        program = self._program(aggregate="min")
        program.process(1, 10)
        assert program.process(1, 20) is False
        assert program.process(1, 5) is True

    def test_groupby_contract_end_to_end(self):
        from repro.core.groupby import master_groupby
        from repro.workloads.synthetic import keyed_values

        stream = [(k, int(v)) for k, v in keyed_values(3000, 80, seed=9)]
        program = self._program(rows=64, cols=4)
        survivors = [
            (k, float(v)) for k, v in stream if program.process(k, v)
        ]
        expected = master_groupby([(k, float(v)) for k, v in stream], "max")
        assert master_groupby(survivors, "max") == expected

    def test_pruning_justified_by_forwarded_entry(self):
        # Safety invariant: a pruned (key, value) must have a previously
        # forwarded entry of the same key with value >= it.
        import random

        rng = random.Random(7)
        program = self._program(rows=4, cols=2)
        best_forwarded = {}
        for _ in range(2000):
            key, value = rng.randrange(30), rng.randrange(1000)
            if program.process(key, value):
                best_forwarded[key] = max(best_forwarded.get(key, 0), value)
            else:
                assert best_forwarded.get(key, -1) >= value

    def test_two_alus_per_stage_suffice(self):
        program = self._program(alus=2)
        program.process(1, 1)

    def test_invalid_config(self):
        from repro.switch.programs import PipelineGroupBy

        with pytest.raises(ConfigurationError):
            PipelineGroupBy(_pipeline(), rows=0, cols=1)
        with pytest.raises(ConfigurationError):
            PipelineGroupBy(_pipeline(), rows=4, cols=2, aggregate="sum")
        with pytest.raises(ConfigurationError):
            self._program().process(-1, 1)


class TestPipelineCountMin:
    def _program(self, width=64, depth=3, seed=0):
        from repro.switch.programs import PipelineCountMin

        return PipelineCountMin(_pipeline(stages=4), width=width, depth=depth, seed=seed)

    def test_estimates_match_sketch_exactly(self):
        # Same hash family, same update rule: the pipeline Count-Min must
        # agree with the sketch model on every estimate.
        import random

        from repro.sketches.countmin import CountMinSketch

        rng = random.Random(11)
        program = self._program(width=32, depth=3, seed=4)
        sketch = CountMinSketch(width=32, depth=3, seed=4)
        for _ in range(2000):
            key, amount = rng.randrange(100), rng.randrange(1, 5)
            assert program.add(key, amount) == sketch.add(key, amount)

    def test_one_sided(self):
        import random

        rng = random.Random(13)
        program = self._program(width=16, depth=2)
        truth = {}
        for _ in range(1000):
            key = rng.randrange(60)
            program.add(key, 1)
            truth[key] = truth.get(key, 0) + 1
        # Estimates via a zero-amount probe never undercount.
        for key, count in truth.items():
            assert program.add(key, 0) >= count

    def test_negative_amount_rejected(self):
        with pytest.raises(ConfigurationError):
            self._program().add(1, -1)

    def test_depth_bounded_by_stages(self):
        from repro.switch.programs import PipelineCountMin

        with pytest.raises(ConfigurationError):
            PipelineCountMin(_pipeline(stages=2), width=8, depth=3)
