"""The process-parallel dataplane: equivalence, determinism, fallbacks.

The load-bearing contract: a run at ``parallelism=N`` produces the same
*output* as the sequential batched path for every operator (both are
verified against the reference executor), streams the same total volume,
and reports through the same metrics schema — while actually executing
each pruner shard in its own OS process over shared-memory columns.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.cluster import Cluster, ClusterConfig
from repro.engine.expressions import col
from repro.engine.plan import (
    CountOp,
    DistinctOp,
    FilterOp,
    GroupByOp,
    HavingOp,
    JoinOp,
    Query,
    SkylineOp,
    TopNOp,
)
from repro.engine.reference import run_reference
from repro.engine.table import Table
from repro.errors import ConfigurationError, SharedMemoryUnavailable

SEEDS = (1, 7, 42)
PARALLELISMS = (1, 2, 4)
BATCH = 128


def make_tables(seed: int) -> dict:
    rng = np.random.default_rng(seed)
    n = 900
    products = Table(
        "products",
        {
            "price": rng.integers(0, 400, n),
            "qty": rng.integers(0, 50, n),
            "cat": rng.integers(0, 30, n),
        },
    )
    ratings = Table("ratings", {"cat": rng.integers(0, 40, n // 2)})
    return {"products": products, "ratings": ratings}


def make_query(op_name: str) -> Query:
    return {
        "filter": Query(FilterOp("products", col("price") > 250)),
        "distinct": Query(DistinctOp("products", ["cat"])),
        "topn": Query(TopNOp("products", "price", 12)),
        "groupby": Query(GroupByOp("products", "cat", "price", "max")),
        "having": Query(
            HavingOp("products", "cat", "price", threshold=5000.0, aggregate="sum")
        ),
        "join": Query(JoinOp("products", "ratings", "cat", "cat")),
        "skyline": Query(SkylineOp("products", ["price", "qty"])),
    }[op_name]


def cluster(parallelism: int, **overrides) -> Cluster:
    return Cluster(
        workers=5,
        config=ClusterConfig(
            batch_size=BATCH, parallelism=parallelism, **overrides
        ),
    )


class TestEquivalence:
    """All 7 operators x 3 seeds x parallelism {1, 2, 4}."""

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize(
        "op_name",
        ["filter", "distinct", "topn", "groupby", "having", "join", "skyline"],
    )
    def test_output_and_volume_match_sequential(self, op_name, seed):
        tables = make_tables(seed)
        query = make_query(op_name)
        sequential = cluster(1).run_verified(query, tables)
        for parallelism in PARALLELISMS:
            result = cluster(parallelism).run_verified(query, tables)
            assert result.output == sequential.output
            assert result.total_streamed == sequential.total_streamed
            assert [p.name for p in result.phases] == [
                p.name for p in sequential.phases
            ]

    def test_count_with_where(self):
        tables = make_tables(3)
        query = Query(
            CountOp("products", col("price") > 100), where=col("qty") <= 25
        )
        sequential = cluster(1).run_verified(query, tables)
        result = cluster(4).run_verified(query, tables)
        assert result.output == sequential.output

    def test_where_before_stateful_operator(self):
        tables = make_tables(5)
        query = Query(DistinctOp("products", ["cat"]), where=col("price") > 200)
        sequential = cluster(1).run_verified(query, tables)
        result = cluster(3).run_verified(query, tables)
        assert result.output == sequential.output

    def test_deterministic_topn_replicas(self):
        tables = make_tables(11)
        query = make_query("topn")
        sequential = cluster(1, topn_randomized=False).run_verified(query, tables)
        result = cluster(4, topn_randomized=False).run_verified(query, tables)
        assert result.output == sequential.output

    def test_multi_column_distinct_hash_shards(self):
        tables = make_tables(13)
        query = Query(DistinctOp("products", ["cat", "qty"]))
        sequential = cluster(1).run_verified(query, tables)
        result = cluster(4).run_verified(query, tables)
        assert result.output == sequential.output

    def test_survivor_stream_is_superset_of_reference(self):
        tables = make_tables(17)
        query = make_query("filter")
        expected = run_reference(query, tables)
        result = cluster(4).run(query, tables)
        assert result.output == expected
        assert result.total_forwarded >= len(expected)


class TestMetrics:
    def test_report_schema_matches_sequential(self):
        tables = make_tables(1)
        query = make_query("filter")
        sequential = cluster(1).run(query, tables).report()
        parallel = cluster(2).run(query, tables).report()
        assert set(sequential) == set(parallel)
        assert [p["name"] for p in sequential["phases"]] == [
            p["name"] for p in parallel["phases"]
        ]
        assert set(sequential["metrics"]) == set(parallel["metrics"])
        counter_names = lambda report: {  # noqa: E731
            entry["name"] for entry in report["metrics"]["counters"]
        }
        assert counter_names(sequential) == counter_names(parallel)
        span_names = lambda report: {  # noqa: E731
            span["name"] for span in report["metrics"]["spans"]
        }
        assert span_names(sequential) == span_names(parallel)

    def test_stateless_filter_counters_equal_sequential(self):
        tables = make_tables(2)
        query = make_query("filter")
        sequential = cluster(1).run(query, tables)
        parallel = cluster(2).run(query, tables)
        seq_counters = sequential.metrics.counter_values()
        par_counters = parallel.metrics.counter_values()
        for name, value in seq_counters.items():
            if name.startswith("phase_") or name.startswith("pruner_"):
                assert par_counters[name] == value, name

    @pytest.mark.parametrize("op_name", ["distinct", "having", "join"])
    def test_merged_totals_equal_streamed_totals(self, op_name):
        tables = make_tables(4)
        result = cluster(4).run(make_query(op_name), tables)
        counters = result.metrics.counter_values()
        streamed = sum(
            v
            for name, v in counters.items()
            if name.startswith("phase_entries_streamed_total")
        )
        assert streamed == result.total_streamed
        worker_streamed = sum(
            v
            for name, v in counters.items()
            if name.startswith("worker_entries_streamed_total")
        )
        assert worker_streamed == result.total_streamed

    def test_gauges_are_labeled_per_shard(self):
        tables = make_tables(6)
        result = cluster(2).run(make_query("distinct"), tables)
        shard_labels = {
            entry["labels"].get("shard")
            for entry in result.metrics.to_dict()["gauges"]
        }
        assert {"0", "1"} <= shard_labels


class TestDeterminism:
    @pytest.mark.parametrize("op_name", ["filter", "distinct", "join"])
    def test_repeated_runs_are_identical(self, op_name):
        tables = make_tables(9)
        query = make_query(op_name)
        first = cluster(3).run(query, tables)
        second = cluster(3).run(query, tables)
        assert first.output == second.output
        assert first.metrics.counter_values() == second.metrics.counter_values()
        assert first.metrics.gauge_values() == second.metrics.gauge_values()


class TestFallbacks:
    def test_parallelism_one_never_enters_parallel_path(self, monkeypatch):
        import repro.parallel.runner as runner

        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("parallel path entered at parallelism=1")

        monkeypatch.setattr(runner, "run_parallel", boom)
        tables = make_tables(1)
        result = cluster(1).run_verified(make_query("filter"), tables)
        assert result.used_cheetah

    def test_active_injector_forces_sequential(self, monkeypatch):
        from repro.faults.plan import FaultPlan

        import repro.parallel.runner as runner

        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("parallel path entered under fault injection")

        monkeypatch.setattr(runner, "run_parallel", boom)
        tables = make_tables(1)
        plan = FaultPlan(events=[], seed=0)
        result = cluster(2, fault_plan=plan).run(make_query("filter"), tables)
        assert result.faults is not None

    def test_shared_memory_unavailable_falls_back(self, monkeypatch):
        import repro.parallel.runner as runner

        def unavailable(*args, **kwargs):
            raise SharedMemoryUnavailable("no segments in this test")

        monkeypatch.setattr(runner, "SharedColumnStore", unavailable)
        tables = make_tables(1)
        query = make_query("filter")
        result = cluster(2).run_verified(query, tables)
        assert result.output == cluster(1).run(query, tables).output

    def test_baseline_runs_stay_sequential(self, monkeypatch):
        import repro.parallel.runner as runner

        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("baseline must not use the parallel path")

        monkeypatch.setattr(runner, "run_parallel", boom)
        tables = make_tables(1)
        result = cluster(2).run(make_query("filter"), tables, use_cheetah=False)
        assert not result.used_cheetah


class TestShardPolicy:
    @pytest.mark.parametrize("op_name", ["having", "join"])
    def test_contiguous_rejected_for_key_split_operators(self, op_name):
        tables = make_tables(1)
        with pytest.raises(ConfigurationError, match="cannot shard contiguously"):
            cluster(2, shard_policy="contiguous").run(make_query(op_name), tables)

    def test_explicit_hash_for_keyless_op_is_contiguous(self):
        from repro.engine.plan import FilterOp as F
        from repro.parallel.shard import CONTIGUOUS, resolve_policy

        op = F("products", col("price") > 1)
        assert resolve_policy(op, "hash", True) == CONTIGUOUS

    def test_auto_policy_per_operator(self):
        from repro.parallel.shard import CONTIGUOUS, HASHED, resolve_policy

        assert resolve_policy(make_query("distinct").operator, "auto", True) == HASHED
        assert resolve_policy(make_query("having").operator, "auto", True) == HASHED
        assert resolve_policy(make_query("join").operator, "auto", True) == HASHED
        assert (
            resolve_policy(make_query("skyline").operator, "auto", True)
            == CONTIGUOUS
        )
        assert resolve_policy(make_query("topn").operator, "auto", False) == (
            CONTIGUOUS
        )
        assert resolve_policy(make_query("topn").operator, "auto", True) == HASHED

    def test_bad_policy_string_rejected(self):
        with pytest.raises(ConfigurationError):
            ClusterConfig(shard_policy="diagonal")
        with pytest.raises(ConfigurationError):
            ClusterConfig(parallelism=0)


class TestPartitioner:
    def test_hash_partition_batch_matches_scalar(self):
        from repro.extensions.multiswitch import (
            hash_partition,
            hash_partition_batch,
        )

        values = np.random.default_rng(0).integers(0, 10_000, 500)
        batch = hash_partition_batch(values, 7)
        scalars = [hash_partition(int(v), 7) for v in values]
        assert batch.tolist() == scalars

    def test_hash_shards_cover_all_rows_disjointly(self):
        from repro.parallel.shard import plan_hash_shards

        values = np.random.default_rng(1).integers(0, 100, 1000)
        shards = plan_hash_shards(values, 4)
        merged = np.concatenate(shards)
        assert sorted(merged.tolist()) == list(range(1000))

    def test_same_key_lands_on_one_shard(self):
        from repro.parallel.shard import plan_hash_shards

        values = np.repeat(np.arange(50), 20)
        shards = plan_hash_shards(values, 4)
        owner = {}
        for shard_id, index in enumerate(shards):
            for key in np.unique(values[index]):
                assert owner.setdefault(int(key), shard_id) == shard_id

    def test_derived_seeds_distinct_and_stable(self):
        from repro.parallel.shard import derive_shard_seed

        seeds = [derive_shard_seed(0, shard) for shard in range(8)]
        assert len(set(seeds)) == 8
        assert seeds == [derive_shard_seed(0, shard) for shard in range(8)]


class TestWorkerShares:
    def test_shares_match_table_partition_sizes(self):
        from repro.obs import MetricsRegistry

        table = Table("t", {"x": np.arange(10)})
        registry = MetricsRegistry()
        Cluster(workers=3)._record_worker_shares(registry, "p", 10)
        counters = registry.counter_values()
        shares = [
            counters[f"worker_entries_streamed_total{{phase=p,worker={w}}}"]
            for w in range(3)
        ]
        assert shares == [len(part) for part in table.partition(3)]
        assert sum(shares) == 10

    def test_remainder_goes_to_later_workers(self):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        Cluster(workers=4)._record_worker_shares(registry, "p", 7, forwarded=5)
        counters = registry.counter_values()
        streamed = [
            counters[f"worker_entries_streamed_total{{phase=p,worker={w}}}"]
            for w in range(4)
        ]
        forwarded = [
            counters[f"worker_entries_forwarded_total{{phase=p,worker={w}}}"]
            for w in range(4)
        ]
        assert sum(streamed) == 7 and streamed[-1] >= streamed[0]
        assert sum(forwarded) == 5

    def test_multi_pass_worker_totals_equal_phase_totals(self):
        tables = make_tables(8)
        result = cluster(1).run(make_query("join"), tables)
        counters = result.metrics.counter_values()
        worker_total = sum(
            v
            for name, v in counters.items()
            if name.startswith("worker_entries_streamed_total")
        )
        assert worker_total == result.total_streamed


class TestSharedMemory:
    def test_round_trip_numeric_and_object_columns(self):
        from repro.parallel.shm import SharedColumnStore, attach_columns

        columns = {
            "a": np.arange(100, dtype=np.int64),
            "b": np.linspace(0, 1, 100),
            "s": np.array(["x", "y"] * 50, dtype=object),
        }
        with SharedColumnStore(columns) as store:
            attached, close = attach_columns(store.handle())
            try:
                for name, array in columns.items():
                    assert np.array_equal(attached[name], array)
            finally:
                close()

    def test_empty_column_round_trip(self):
        from repro.parallel.shm import SharedColumnStore, attach_columns

        with SharedColumnStore({"a": np.empty(0, dtype=np.int64)}) as store:
            attached, close = attach_columns(store.handle())
            try:
                assert len(attached["a"]) == 0
            finally:
                close()

    def test_error_between_export_and_submit_unlinks_segments(self, monkeypatch):
        """Satellite regression: an exception after segment creation but
        before task submission must leave nothing behind in /dev/shm."""
        import os

        import repro.parallel.runner as runner
        from repro.parallel.shm import SharedColumnStore

        created: list = []

        class RecordingStore(SharedColumnStore):
            def __init__(self, columns):
                super().__init__(columns)
                created.extend(self.segment_names())

        def boom(*args, **kwargs):
            raise RuntimeError("injected failure before submission")

        monkeypatch.setattr(runner, "SharedColumnStore", RecordingStore)
        monkeypatch.setattr(runner, "_gather", boom)
        tables = make_tables(1)
        with pytest.raises(RuntimeError, match="injected failure"):
            cluster(2).run(make_query("filter"), tables)
        assert created, "the store was never built — test is vacuous"
        for name in created:
            assert not os.path.exists(f"/dev/shm/{name}"), name

    def test_close_survives_live_attached_views(self):
        from repro.parallel.shm import SharedColumnStore, attach_columns

        store = SharedColumnStore({"a": np.arange(64, dtype=np.int64)})
        names = store.segment_names()
        attached, close = attach_columns(store.handle())
        view = attached["a"]
        store.close()  # unlink must succeed even with the view alive
        import os

        for name in names:
            assert not os.path.exists(f"/dev/shm/{name}")
        assert view.sum() == np.arange(64).sum()  # pages live until close
        close()


class TestShardPlanCache:
    def setup_method(self):
        from repro.parallel.shard import invalidate_shard_plans

        invalidate_shard_plans()

    def test_repeat_runs_hit_the_plan_cache(self):
        """Satellite: hash-partition planning is memoized per
        (table identity, key signature, parallelism)."""
        from repro.parallel.shard import shard_plan_cache_stats

        tables = make_tables(1)
        query = make_query("distinct")
        c = cluster(2)
        c.run_verified(query, tables)
        before = shard_plan_cache_stats()
        c.run_verified(query, tables)
        after = shard_plan_cache_stats()
        assert after["hits"] > before["hits"]
        assert after["misses"] == before["misses"]

    def test_groupby_and_having_share_key_plans(self):
        from repro.parallel.shard import (
            cached_hash_plan,
            shard_plan_cache_stats,
        )

        tables = make_tables(2)
        table = tables["products"]
        groupby = make_query("groupby").operator
        having = make_query("having").operator
        first = cached_hash_plan(groupby, table, 3)
        hits_before = shard_plan_cache_stats()["hits"]
        second = cached_hash_plan(having, table, 3)
        assert shard_plan_cache_stats()["hits"] > hits_before
        assert all(np.array_equal(a, b) for a, b in zip(first, second))

    def test_swapped_table_never_reuses_plans(self):
        from repro.parallel.shard import cached_hash_plan

        op = make_query("distinct").operator
        first = make_tables(1)["products"]
        plan_a = cached_hash_plan(op, first, 2)
        swapped = make_tables(30)["products"]
        plan_b = cached_hash_plan(op, swapped, 2)
        reference = cached_hash_plan(op, swapped, 2)
        assert all(np.array_equal(a, b) for a, b in zip(plan_b, reference))
        assert any(
            not np.array_equal(a, b) for a, b in zip(plan_a, plan_b)
        )  # different tables, different plans

    def test_invalidate_drops_everything(self):
        from repro.parallel.shard import (
            cached_hash_plan,
            invalidate_shard_plans,
            shard_plan_cache_stats,
        )

        tables = make_tables(3)
        cached_hash_plan(make_query("distinct").operator, tables["products"], 2)
        assert shard_plan_cache_stats()["entries"] > 0
        assert invalidate_shard_plans() > 0
        assert shard_plan_cache_stats()["entries"] == 0
