"""Tests for the late-materialization model (repro.engine.materialization)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.materialization import (
    FetchModel,
    fetch_plan_summary,
    materialize_rows,
)
from repro.engine.table import Table
from repro.errors import ConfigurationError


@pytest.fixture
def table():
    return Table(
        "t",
        {
            "id": np.arange(100),
            "payload": np.arange(100) * 10,
        },
    )


class TestFetchModel:
    def test_wire_bytes_scale_with_rows(self):
        model = FetchModel()
        assert model.wire_bytes(1000) > model.wire_bytes(100) * 5

    def test_zero_rows_zero_payload(self):
        model = FetchModel()
        assert model.wire_bytes(0) == 0
        assert model.packets(0) == 0

    def test_compression_reduces_bytes(self):
        tight = FetchModel(compression_ratio=0.2)
        loose = FetchModel(compression_ratio=1.0)
        assert tight.wire_bytes(10_000) < loose.wire_bytes(10_000)

    def test_mtu_packing_many_rows_per_frame(self):
        model = FetchModel(bytes_per_row=100, compression_ratio=1.0, mtu_bytes=1500)
        # 15 rows fit one frame.
        assert model.packets(15) == 1
        assert model.packets(16) == 2

    def test_fetch_seconds_uses_rate(self):
        slow = FetchModel(network_gbps=10)
        fast = FetchModel(network_gbps=20)
        assert slow.fetch_seconds(10_000) == pytest.approx(
            2 * fast.fetch_seconds(10_000)
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FetchModel(bytes_per_row=0)
        with pytest.raises(ConfigurationError):
            FetchModel(compression_ratio=0.0)
        with pytest.raises(ConfigurationError):
            FetchModel(network_gbps=0)
        with pytest.raises(ConfigurationError):
            FetchModel().wire_bytes(-1)


class TestMaterializeRows:
    def test_fetches_requested_rows(self, table):
        fetched = materialize_rows(table, [3, 7])
        assert fetched["payload"].tolist() == [30, 70]

    def test_deduplicates_ids(self, table):
        # Retransmissions can deliver duplicate survivors; fetch once.
        fetched = materialize_rows(table, [5, 5, 5])
        assert fetched.num_rows == 1

    def test_out_of_range_rejected(self, table):
        with pytest.raises(ConfigurationError):
            materialize_rows(table, [100])

    def test_empty_request(self, table):
        assert materialize_rows(table, []).num_rows == 0


class TestEndToEndFetch:
    def test_filter_query_with_materialization(self, table):
        """Metadata pass prunes, fetch returns the exact matching rows."""
        from repro.engine.cluster import Cluster
        from repro.engine.expressions import col
        from repro.engine.plan import FilterOp, Query

        query = Query(FilterOp("t", col("payload") > 900))
        result = Cluster(workers=2).run_verified(query, {"t": table})
        fetched = materialize_rows(table, sorted(result.output))
        assert fetched.num_rows == len(result.output)
        assert all(fetched["payload"] > 900)

    def test_fetch_identical_with_and_without_cheetah(self, table):
        # The paper's point: pruning only touches the metadata pass; the
        # fetch leg is byte-identical either way.
        from repro.engine.cluster import Cluster
        from repro.engine.expressions import col
        from repro.engine.plan import FilterOp, Query

        query = Query(FilterOp("t", col("payload") > 500))
        cluster = Cluster(workers=2)
        with_switch = cluster.run(query, {"t": table}, use_cheetah=True)
        without = cluster.run(query, {"t": table}, use_cheetah=False)
        model = FetchModel()
        assert model.wire_bytes(len(with_switch.output)) == model.wire_bytes(
            len(without.output)
        )

    def test_fetch_plan_summary_fields(self):
        summary = fetch_plan_summary(10_000, 500, 500, FetchModel())
        assert summary["metadata_entries"] == 10_000
        assert summary["fetch_rows"] == 500
        assert summary["fetch_seconds"] > 0
        assert summary["fetch_bytes"] < summary["metadata_bytes"]
