"""Tests for the d×w cache matrices (repro.sketches.cachematrix)."""

from __future__ import annotations

import random

import pytest

from repro.errors import ConfigurationError
from repro.sketches.cachematrix import (
    CacheMatrix,
    KeyedAggregateMatrix,
    RollingMinMatrix,
    expected_distinct_pruning,
)


class TestCacheMatrix:
    def test_miss_then_hit(self):
        m = CacheMatrix(rows=4, cols=2)
        assert m.lookup_insert("a") is False
        assert m.lookup_insert("a") is True

    def test_no_false_positives(self):
        # The core DISTINCT property: a hit means the value was inserted.
        m = CacheMatrix(rows=8, cols=3, seed=5)
        rng = random.Random(1)
        inserted = set()
        for _ in range(2000):
            value = rng.randrange(500)
            hit = m.lookup_insert(value)
            if hit:
                assert value in inserted
            inserted.add(value)

    def test_same_value_same_row(self):
        m = CacheMatrix(rows=16, cols=2)
        assert m.row_of("v") == m.row_of("v")

    def test_eviction_after_w_new_values_in_row(self):
        m = CacheMatrix(rows=1, cols=2)  # single row: everything collides
        m.lookup_insert("a")
        m.lookup_insert("b")
        m.lookup_insert("c")  # evicts "a"
        assert m.lookup_insert("a") is False  # was evicted: miss again

    def test_lru_refreshes_on_hit(self):
        m = CacheMatrix(rows=1, cols=2, policy="lru")
        m.lookup_insert("a")
        m.lookup_insert("b")
        m.lookup_insert("a")  # hit: refresh "a" to front
        m.lookup_insert("c")  # evicts "b", not "a"
        assert m.lookup_insert("a") is True
        assert m.lookup_insert("b") is False

    def test_fifo_does_not_refresh(self):
        m = CacheMatrix(rows=1, cols=2, policy="fifo")
        m.lookup_insert("a")
        m.lookup_insert("b")
        m.lookup_insert("a")  # hit but no refresh under FIFO
        m.lookup_insert("c")  # evicts "a" (oldest by insertion)
        assert m.lookup_insert("a") is False

    def test_contains_is_non_mutating(self):
        m = CacheMatrix(rows=2, cols=2)
        m.lookup_insert("x")
        assert m.contains("x")
        assert m.contains("x")  # still there; probing did not evict

    def test_clear(self):
        m = CacheMatrix(rows=4, cols=2)
        m.lookup_insert("x")
        m.clear()
        assert not m.contains("x")
        assert m.occupancy() == 0

    def test_occupancy_counts(self):
        m = CacheMatrix(rows=8, cols=2)
        for i in range(5):
            m.lookup_insert(i)
        assert m.occupancy() == 5

    def test_row_values_recency_order(self):
        m = CacheMatrix(rows=1, cols=3)
        for v in ("a", "b", "c"):
            m.lookup_insert(v)
        assert m.row_values(0) == ["c", "b", "a"]

    def test_sram_accounting_matches_table2(self):
        m = CacheMatrix(rows=4096, cols=2)
        assert m.sram_bits() == 4096 * 2 * 64

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            CacheMatrix(rows=0, cols=1)
        with pytest.raises(ConfigurationError):
            CacheMatrix(rows=1, cols=0)
        with pytest.raises(ConfigurationError):
            CacheMatrix(rows=1, cols=1, policy="mru")


class TestRollingMinMatrix:
    def test_not_full_row_never_prunes(self):
        m = RollingMinMatrix(rows=1, cols=3)
        assert m.offer(5.0, 0) is False
        assert m.offer(1.0, 0) is False
        assert m.offer(0.5, 0) is False

    def test_prunes_below_full_row_minimum(self):
        m = RollingMinMatrix(rows=1, cols=2)
        m.offer(10.0, 0)
        m.offer(20.0, 0)
        assert m.offer(5.0, 0) is True

    def test_forwards_value_above_minimum_and_updates(self):
        m = RollingMinMatrix(rows=1, cols=2)
        m.offer(10.0, 0)
        m.offer(20.0, 0)
        assert m.offer(15.0, 0) is False  # displaces 10
        assert m.minimum(0) == 15.0
        assert m.offer(12.0, 0) is True  # now below new minimum

    def test_row_keeps_largest_w(self):
        m = RollingMinMatrix(rows=1, cols=3)
        for v in (5.0, 1.0, 9.0, 7.0, 3.0, 8.0):
            m.offer(v, 0)
        assert m.row_values(0) == [9.0, 8.0, 7.0]

    def test_equal_to_minimum_is_forwarded(self):
        # "Smaller than all w" is strict: a tie is not provably redundant.
        m = RollingMinMatrix(rows=1, cols=2)
        m.offer(10.0, 0)
        m.offer(20.0, 0)
        assert m.offer(10.0, 0) is False

    def test_paper_figure2_example(self):
        # Stream (7,4,7,5,3,2) on a 3x2 matrix: 3 pruned in a full row,
        # 2 not pruned (its row not full).  We reproduce by routing rows
        # explicitly the way Fig. 2 shows.
        m = RollingMinMatrix(rows=3, cols=2)
        assert m.offer(7.0, 2) is False
        assert m.offer(4.0, 2) is False
        assert m.offer(7.0, 0) is False
        assert m.offer(5.0, 0) is False
        assert m.offer(3.0, 2) is True  # row 2 holds (7, 4), both larger
        assert m.offer(2.0, 1) is False  # row 1 was empty

    def test_minimum_none_when_not_full(self):
        m = RollingMinMatrix(rows=1, cols=2)
        m.offer(1.0, 0)
        assert m.minimum(0) is None

    def test_row_out_of_range(self):
        m = RollingMinMatrix(rows=2, cols=2)
        with pytest.raises(ConfigurationError):
            m.offer(1.0, 2)

    def test_clear(self):
        m = RollingMinMatrix(rows=1, cols=2)
        m.offer(1.0, 0)
        m.clear()
        assert m.row_values(0) == []

    def test_pruned_value_leaves_state_untouched(self):
        m = RollingMinMatrix(rows=1, cols=2)
        m.offer(10.0, 0)
        m.offer(20.0, 0)
        before = m.row_values(0)
        m.offer(1.0, 0)
        assert m.row_values(0) == before


class TestKeyedAggregateMatrix:
    def test_first_occurrence_forwarded(self):
        m = KeyedAggregateMatrix(rows=4, cols=2, better=lambda a, b: a > b)
        assert m.observe("k", 5.0) is False

    def test_worse_value_pruned(self):
        m = KeyedAggregateMatrix(rows=4, cols=2, better=lambda a, b: a > b)
        m.observe("k", 5.0)
        assert m.observe("k", 3.0) is True

    def test_better_value_forwarded_and_cached(self):
        m = KeyedAggregateMatrix(rows=4, cols=2, better=lambda a, b: a > b)
        m.observe("k", 5.0)
        assert m.observe("k", 7.0) is False
        assert m.observe("k", 6.0) is True  # 6 < cached 7

    def test_equal_value_pruned_for_max(self):
        m = KeyedAggregateMatrix(rows=4, cols=2, better=lambda a, b: a > b)
        m.observe("k", 5.0)
        assert m.observe("k", 5.0) is True

    def test_min_aggregate_direction(self):
        m = KeyedAggregateMatrix(rows=4, cols=2, better=lambda a, b: a < b)
        m.observe("k", 5.0)
        assert m.observe("k", 7.0) is True
        assert m.observe("k", 3.0) is False

    def test_eviction_reintroduces_key(self):
        m = KeyedAggregateMatrix(rows=1, cols=1, better=lambda a, b: a > b)
        m.observe("a", 10.0)
        m.observe("b", 1.0)  # evicts "a"
        assert m.observe("a", 2.0) is False  # re-cached, forwarded

    def test_cached_keys(self):
        m = KeyedAggregateMatrix(rows=1, cols=2, better=lambda a, b: a > b)
        m.observe("a", 1.0)
        m.observe("b", 2.0)
        assert set(m.cached_keys(0)) == {"a", "b"}

    def test_clear(self):
        m = KeyedAggregateMatrix(rows=2, cols=2, better=lambda a, b: a > b)
        m.observe("a", 1.0)
        m.clear()
        assert m.cached_keys(m.row_of("a")) == []

    def test_invalid_dimensions(self):
        with pytest.raises(ConfigurationError):
            KeyedAggregateMatrix(rows=0, cols=1, better=lambda a, b: a > b)


class TestExpectedDistinctPruning:
    def test_paper_example(self):
        # D=15000, d=1000, w=24 -> expected ~58% of duplicates pruned.
        rate = expected_distinct_pruning(15_000, 1000, 24)
        assert rate == pytest.approx(0.58, abs=0.02)

    def test_caps_at_099(self):
        assert expected_distinct_pruning(10, 1000, 24) == pytest.approx(0.99)

    def test_zero_distinct(self):
        assert expected_distinct_pruning(0, 10, 10) == 1.0
