"""Tests for SKYLINE pruning (repro.core.skyline)."""

from __future__ import annotations

import pytest

from repro.core.base import Guarantee, PruneDecision
from repro.core.skyline import (
    AphScore,
    SkylinePruner,
    dominates,
    master_skyline,
    score_product,
    score_sum,
    weakly_dominates,
)
from repro.errors import ConfigurationError, UnsupportedOperationError
from repro.workloads.synthetic import correlated_points, uniform_points


def _run_with_drain(pruner, points):
    """Stream points; return what the master receives (carried + drained)."""
    received = []
    for point in points:
        if pruner.process(point) is PruneDecision.FORWARD:
            received.append(pruner.last_carried)
    received.extend(pruner.drain())
    return received


class TestDomination:
    def test_dominates_strict(self):
        assert dominates((5, 5), (3, 3))
        assert dominates((5, 3), (3, 3))
        assert not dominates((3, 3), (3, 3))  # equal: not strict

    def test_weakly_dominates(self):
        assert weakly_dominates((3, 3), (3, 3))
        assert weakly_dominates((5, 3), (3, 3))
        assert not weakly_dominates((5, 2), (3, 3))


class TestScores:
    def test_sum(self):
        assert score_sum((2, 3)) == 5.0

    def test_product_shifted(self):
        assert score_product((0, 0)) == 1.0
        assert score_product((1, 2)) == 6.0

    def test_scores_monotone_under_domination(self):
        # h monotone: y dominates x => h(y) >= h(x), for every score.
        pairs = [((10, 20), (5, 20)), ((7, 7), (7, 6)), ((100, 1), (99, 0))]
        aph = AphScore()
        for better, worse in pairs:
            assert score_sum(better) >= score_sum(worse)
            assert score_product(better) >= score_product(worse)
            assert aph(better) >= aph(worse)

    def test_aph_tracks_product_ordering(self):
        # APH approximates log of the product; ordering should agree with
        # the true product on well-separated pairs.
        aph = AphScore(beta=1 << 10)
        a, b = (100, 200), (30, 40)
        assert (aph(a) > aph(b)) == (score_product(a) > score_product(b))

    def test_aph_rejects_negative_coordinates(self):
        with pytest.raises(UnsupportedOperationError):
            AphScore()((-1, 5))


class TestSkylinePruner:
    def test_paper_ratings_example(self, ratings_table):
        # SKYLINE OF taste, texture over Table 1b -> Cheetos, Jello, Burger.
        points = [
            (7.0, 5.0),   # Pizza
            (8.0, 6.0),   # Cheetos
            (9.0, 4.0),   # Jello
            (5.0, 7.0),   # Burger
            (3.0, 3.0),   # Fries
        ]
        pruner = SkylinePruner(dims=2, points=4, score="sum")
        received = _run_with_drain(pruner, points)
        assert set(master_skyline(received)) == {
            (8.0, 6.0),
            (9.0, 4.0),
            (5.0, 7.0),
        }

    @pytest.mark.parametrize("score", ["sum", "product", "aph", "baseline"])
    def test_contract_on_uniform_points(self, score):
        points = uniform_points(2000, dims=2, seed=3)
        pruner = SkylinePruner(dims=2, points=8, score=score)
        received = _run_with_drain(pruner, points)
        assert set(master_skyline(received)) == set(master_skyline(points))

    @pytest.mark.parametrize("score", ["sum", "aph"])
    def test_contract_on_anticorrelated_points(self, score):
        # Anti-correlated data has large skylines - the stress case.
        points = correlated_points(1500, dims=2, seed=5)
        pruner = SkylinePruner(dims=2, points=6, score=score)
        received = _run_with_drain(pruner, points)
        assert set(master_skyline(received)) == set(master_skyline(points))

    def test_contract_three_dimensions(self):
        points = uniform_points(1000, dims=3, seed=7)
        pruner = SkylinePruner(dims=3, points=5, score="sum")
        received = _run_with_drain(pruner, points)
        assert set(master_skyline(received)) == set(master_skyline(points))

    def test_dominated_point_pruned(self):
        pruner = SkylinePruner(dims=2, points=2, score="sum")
        pruner.process((10.0, 10.0))
        assert pruner.process((5.0, 5.0)) is PruneDecision.PRUNE

    def test_duplicate_point_pruned(self):
        pruner = SkylinePruner(dims=2, points=2, score="sum")
        pruner.process((10.0, 10.0))
        assert pruner.process((10.0, 10.0)) is PruneDecision.PRUNE

    def test_stored_points_have_highest_scores(self):
        pruner = SkylinePruner(dims=2, points=2, score="sum")
        for point in [(1.0, 1.0), (10.0, 10.0), (5.0, 5.0), (20.0, 1.0)]:
            pruner.process(point)
        scores = pruner.stored_scores()
        assert sorted(scores, reverse=True) == scores
        assert 20.0 in scores and 21.0 in scores  # sums 20+1 and 10+10

    def test_pruning_rate_improves_with_more_points(self):
        points = uniform_points(3000, dims=2, seed=9)
        small = SkylinePruner(dims=2, points=2, score="sum")
        large = SkylinePruner(dims=2, points=16, score="sum")
        for p in points:
            small.process(p)
            large.process(p)
        assert large.stats.pruning_rate >= small.stats.pruning_rate

    def test_aph_prunes_at_least_as_well_as_baseline(self):
        points = uniform_points(3000, dims=2, seed=11)
        aph = SkylinePruner(dims=2, points=6, score="aph")
        baseline = SkylinePruner(dims=2, points=6, score="baseline")
        for p in points:
            aph.process(p)
            baseline.process(p)
        assert aph.stats.pruning_rate >= baseline.stats.pruning_rate

    def test_baseline_never_replaces(self):
        pruner = SkylinePruner(dims=2, points=1, score="baseline")
        pruner.process((1.0, 1.0))
        pruner.process((100.0, 100.0))
        assert pruner.stored_scores() == [2.0]  # first point pinned

    def test_wrong_dimensionality_raises(self):
        pruner = SkylinePruner(dims=2, points=2)
        with pytest.raises(ConfigurationError):
            pruner.process((1.0, 2.0, 3.0))

    def test_drain_returns_stored_points(self):
        pruner = SkylinePruner(dims=2, points=3, score="sum")
        pruner.process((1.0, 2.0))
        assert (1.0, 2.0) in pruner.drain()

    def test_reset(self):
        pruner = SkylinePruner(dims=2, points=2)
        pruner.process((1.0, 1.0))
        pruner.reset()
        assert pruner.drain() == []
        assert pruner.stats.processed == 0

    def test_guarantee(self):
        assert SkylinePruner().guarantee is Guarantee.DETERMINISTIC

    def test_footprint_scores(self):
        sum_fp = SkylinePruner(dims=2, points=10, score="sum").footprint()
        aph_fp = SkylinePruner(dims=2, points=10, score="aph").footprint()
        assert aph_fp.tcam_entries > sum_fp.tcam_entries
        assert aph_fp.sram_bits > sum_fp.sram_bits

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            SkylinePruner(dims=0)
        with pytest.raises(ConfigurationError):
            SkylinePruner(points=0)
        with pytest.raises(ConfigurationError):
            SkylinePruner(score="cosine")


class TestMasterSkyline:
    def test_exact_skyline(self):
        points = [(1, 5), (5, 1), (3, 3), (2, 2), (5, 1)]
        assert set(master_skyline(points)) == {(1, 5), (5, 1), (3, 3)}

    def test_single_point(self):
        assert master_skyline([(1, 1)]) == [(1, 1)]

    def test_empty(self):
        assert master_skyline([]) == []

    def test_duplicates_deduped(self):
        assert master_skyline([(2, 2), (2, 2)]) == [(2, 2)]


class TestMasterSkylineSfsEquivalence:
    """The sort-filter implementation must equal brute force exactly."""

    @staticmethod
    def _brute_force(points):
        unique = list(dict.fromkeys(tuple(p) for p in points))
        return {
            c
            for c in unique
            if not any(o != c and weakly_dominates(o, c) for o in unique)
        }

    def test_equivalence_on_random_sets(self):
        import random

        rng = random.Random(31)
        for trial in range(50):
            dims = rng.choice([2, 3])
            points = [
                tuple(float(rng.randrange(20)) for _ in range(dims))
                for _ in range(rng.randrange(1, 120))
            ]
            assert set(master_skyline(points)) == self._brute_force(points), points

    def test_equivalence_with_heavy_ties(self):
        points = [(1.0, 2.0), (2.0, 1.0), (1.0, 2.0), (2.0, 1.0), (1.5, 1.5)]
        assert set(master_skyline(points)) == self._brute_force(points)

    def test_all_on_a_diagonal(self):
        # Equal sums, mutually incomparable: everything is skyline.
        points = [(float(i), float(10 - i)) for i in range(11)]
        assert set(master_skyline(points)) == set(points)
