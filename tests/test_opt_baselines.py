"""Tests for the OPT oracles and baseline models (repro.analysis/baselines)."""

from __future__ import annotations

import pytest

from repro.analysis.opt import (
    opt_distinct_rate,
    opt_distinct_unpruned,
    opt_groupby_unpruned,
    opt_having_unpruned,
    opt_join_rate,
    opt_join_unpruned,
    opt_skyline_unpruned,
    opt_topn_rate,
    opt_topn_unpruned,
)
from repro.baselines.hardware import TABLE3, profile, switch_vs_server_throughput
from repro.baselines.netaccel import NetAccelModel
from repro.errors import ConfigurationError


class TestOptDistinct:
    def test_counts_first_occurrences(self):
        assert opt_distinct_unpruned([1, 2, 1, 3, 2]) == 3

    def test_rate(self):
        assert opt_distinct_rate([1, 1, 1, 1]) == 0.75

    def test_empty(self):
        assert opt_distinct_rate([]) == 0.0

    def test_upper_bounds_cheetah(self):
        # No switch algorithm can beat OPT on the same stream.
        from repro.core.distinct import DistinctPruner
        from repro.workloads.synthetic import random_order_stream

        stream = random_order_stream(5000, 500, seed=1)
        pruner = DistinctPruner(rows=256, cols=2)
        survivors = pruner.survivors(stream)
        assert len(survivors) >= opt_distinct_unpruned(stream)


class TestOptTopN:
    def test_running_top_n_membership(self):
        # Stream 1..10 ascending with n=2: every arrival enters the top 2.
        assert opt_topn_unpruned(list(range(1, 11)), 2) == 10

    def test_descending_stream_only_first_n(self):
        assert opt_topn_unpruned(list(range(10, 0, -1)), 3) == 3

    def test_rate(self):
        assert opt_topn_rate(list(range(10, 0, -1)), 5) == 0.5

    def test_upper_bounds_cheetah(self):
        import random

        from repro.core.topn import TopNRandomizedPruner

        rng = random.Random(3)
        stream = [rng.random() for _ in range(5000)]
        pruner = TopNRandomizedPruner(n=20, rows=64, cols=4, seed=1)
        survivors = pruner.survivors(stream)
        assert len(survivors) >= opt_topn_unpruned(stream, 20)


class TestOptSkyline:
    def test_forwards_non_dominated_at_arrival(self):
        points = [(1.0, 1.0), (2.0, 2.0), (0.5, 0.5)]
        # (1,1) new; (2,2) not dominated; (0.5,0.5) dominated by both.
        assert opt_skyline_unpruned(points) == 2

    def test_all_incomparable(self):
        points = [(1.0, 3.0), (2.0, 2.0), (3.0, 1.0)]
        assert opt_skyline_unpruned(points) == 3


class TestOptGroupBy:
    def test_improvements_counted(self):
        stream = [("a", 1.0), ("a", 2.0), ("a", 1.5), ("b", 1.0)]
        assert opt_groupby_unpruned(stream, "max") == 3

    def test_min_direction(self):
        stream = [("a", 5.0), ("a", 3.0), ("a", 4.0)]
        assert opt_groupby_unpruned(stream, "min") == 2


class TestOptJoin:
    def test_only_matches_forwarded(self):
        left, right = [1, 2, 3], [3, 4]
        # Left matches: {3} -> 1 entry; right matches: {3} -> 1 entry.
        assert opt_join_unpruned(left, right) == 2

    def test_rate(self):
        assert opt_join_rate([1, 2], [3, 4]) == 1.0

    def test_empty(self):
        assert opt_join_rate([], []) == 0.0


class TestOptHaving:
    def test_one_forward_per_qualifying_key(self):
        stream = [("a", 6.0), ("a", 6.0), ("b", 1.0)]
        assert opt_having_unpruned(stream, 10) == 1  # "a" crosses at 12

    def test_count_aggregate(self):
        stream = [("a", 0.0)] * 5
        assert opt_having_unpruned(stream, 3, "count") == 1


class TestNetAccelModel:
    def test_drain_time_linear_in_result(self):
        model = NetAccelModel()
        small = model.drain_time(1000)
        large = model.drain_time(100_000)
        assert large > small * 10

    def test_drain_has_setup_floor(self):
        model = NetAccelModel(drain_setup_s=0.5)
        assert model.drain_time(0) == pytest.approx(0.5)

    def test_switch_cpu_slower_than_server(self):
        # Figs. 12/13: the switch CPU loses to the master server.
        model = NetAccelModel()
        for n in (10_000, 100_000, 1_000_000):
            assert model.switch_cpu_time(n) > model.server_time(n)

    def test_cheetah_tail_beats_netaccel_drain(self):
        # Fig. 7: pipelined streaming beats drain for any result size.
        model = NetAccelModel()
        for result_size in (1000, 10_000, 100_000):
            assert model.cheetah_total(result_size) < model.netaccel_total(
                dataplane_entries=10**6, result_entries=result_size
            )

    def test_overflow_adds_time(self):
        model = NetAccelModel()
        without = model.netaccel_total(10**6, 1000, overflow=0)
        with_overflow = model.netaccel_total(10**6, 1000, overflow=100_000)
        assert with_overflow > without

    def test_negative_counts_rejected(self):
        model = NetAccelModel()
        with pytest.raises(ConfigurationError):
            model.drain_time(-1)
        with pytest.raises(ConfigurationError):
            model.switch_cpu_time(-1)
        with pytest.raises(ConfigurationError):
            model.server_time(-1)


class TestHardwareCatalog:
    def test_table3_has_five_rows(self):
        assert len(TABLE3) == 5

    def test_profile_lookup(self):
        assert profile("tofino v2").throughput_gbps_high == 12_800

    def test_unknown_profile(self):
        with pytest.raises(KeyError):
            profile("abacus")

    def test_switch_throughput_two_orders_above_server(self):
        assert switch_vs_server_throughput() >= 100

    def test_switch_latency_submicrosecond(self):
        assert profile("Tofino V2").latency_us_high <= 1.0
