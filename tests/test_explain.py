"""Tests for the EXPLAIN facility (repro.engine.explain)."""

from __future__ import annotations

import pytest

from repro.engine.cluster import ClusterConfig
from repro.engine.explain import explain
from repro.engine.sql import parse
from repro.switch.resources import MINI


class TestExplain:
    def test_filter_shows_decomposition(self):
        text = explain(
            parse(
                "SELECT * FROM Ratings WHERE taste > 5 OR "
                "(texture > 4 AND name LIKE 'e%s')"
            )
        )
        # The paper's §4.1 example: LIKE relaxes away, two predicates stay.
        assert "taste>5" in text
        assert "texture>4" in text
        assert "LIKE" in text  # listed as deferred to the master
        assert "deferred to master" in text
        assert "truth table: 3 match-action rules" in text

    def test_fully_supported_filter_has_no_deferral(self):
        text = explain(parse("SELECT * FROM Ratings WHERE taste > 5"))
        assert "deferred" not in text

    def test_distinct_plan(self):
        text = explain(parse("SELECT DISTINCT seller FROM Products"))
        assert "DistinctPruner" in text
        assert "deterministic" in text
        assert "hash set" in text

    def test_join_shows_two_passes(self):
        text = explain(
            parse("SELECT * FROM A JOIN B ON A.x = B.y")
        )
        assert "Bloom" in text
        assert "JoinPruner" in text

    def test_having_shows_refetch(self):
        text = explain(
            parse("SELECT k FROM T GROUP BY k HAVING SUM(v) > 10")
        )
        assert "partial refetch" in text or "partial second pass" in text
        assert "HavingPruner" in text

    def test_skyline_footprint(self):
        text = explain(parse("SELECT a FROM T SKYLINE OF x, y"))
        assert "SkylinePruner" in text
        assert "TCAM" in text

    def test_topn_probabilistic_guarantee(self):
        text = explain(parse("SELECT TOP 100 x FROM T ORDER BY x"))
        assert "probabilistic" in text

    def test_deterministic_topn_config(self):
        text = explain(
            parse("SELECT TOP 100 x FROM T ORDER BY x"),
            config=ClusterConfig(topn_randomized=False),
        )
        assert "TopNDeterministicPruner" in text
        assert "deterministic" in text

    def test_too_small_hardware_reported(self):
        text = explain(
            parse("SELECT * FROM A JOIN B ON A.x = B.y"), model=MINI
        )
        assert "NO" in text

    def test_packed_where_mentioned(self):
        text = explain(
            parse("SELECT DISTINCT userAgent FROM UserVisits WHERE duration > 10")
        )
        assert "packed before the operator" in text

    def test_stream_columns_listed(self):
        text = explain(parse("SELECT DISTINCT a FROM T WHERE b > 1"))
        assert "'a'" in text and "'b'" in text
