"""Tests for stages, PHV, and pipeline execution (repro.switch)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, ResourceError
from repro.switch.pipeline import Phv, Pipeline
from repro.switch.resources import MINI, ResourceModel
from repro.switch.stage import MatchActionTable, RegisterArray, Stage


class TestRegisterArray:
    def test_read_write(self):
        arr = RegisterArray("r", size=4)
        arr.write(2, 99)
        assert arr.read(2) == 99

    def test_width_truncation(self):
        arr = RegisterArray("r", size=1, width_bits=8)
        arr.write(0, 0x1FF)
        assert arr.read(0) == 0xFF

    def test_clear(self):
        arr = RegisterArray("r", size=2)
        arr.write(0, 5)
        arr.clear()
        assert arr.read(0) == 0

    def test_sram_accounting(self):
        assert RegisterArray("r", size=10, width_bits=32).sram_bits == 320

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            RegisterArray("r", size=0)
        with pytest.raises(ConfigurationError):
            RegisterArray("r", size=1, width_bits=128)


class TestMatchActionTable:
    def test_default_action_on_miss(self):
        table = MatchActionTable("t", default_action=7)
        assert table.lookup(123) == 7

    def test_installed_rule_matches(self):
        table = MatchActionTable("t")
        table.install(5, 42)
        assert table.lookup(5) == 42

    def test_len_counts_rules(self):
        table = MatchActionTable("t")
        table.install(1, 1)
        table.install(2, 2)
        assert len(table) == 2


class TestStage:
    def test_register_allocation_charges_sram(self):
        stage = Stage(0, alus=2, sram_bits=1000)
        stage.alloc_register("r", size=10, width_bits=64)
        assert stage.sram_used_bits == 640

    def test_allocation_beyond_budget_raises(self):
        stage = Stage(0, alus=2, sram_bits=100)
        with pytest.raises(ResourceError):
            stage.alloc_register("r", size=10, width_bits=64)

    def test_duplicate_register_name_raises(self):
        stage = Stage(0, alus=2, sram_bits=10_000)
        stage.alloc_register("r", size=1)
        with pytest.raises(ConfigurationError):
            stage.alloc_register("r", size=1)

    def test_alu_metering_enforced(self):
        stage = Stage(0, alus=2, sram_bits=10_000)
        stage.alloc_register("r", size=4)
        stage.begin_packet()
        stage.reg_read("r", 0)
        stage.reg_write("r", 0, 1)
        with pytest.raises(ResourceError, match="ALU"):
            stage.reg_read("r", 1)

    def test_begin_packet_resets_meter(self):
        stage = Stage(0, alus=1, sram_bits=10_000)
        stage.alloc_register("r", size=1)
        stage.begin_packet()
        stage.reg_read("r", 0)
        stage.begin_packet()
        stage.reg_read("r", 0)  # allowed again for the new packet

    def test_read_modify_write_is_one_op(self):
        stage = Stage(0, alus=1, sram_bits=10_000)
        stage.alloc_register("r", size=1)
        stage.begin_packet()
        old = stage.reg_read_modify_write("r", 0, lambda v: v + 5)
        assert old == 0
        assert stage.alu_ops_this_packet == 1

    def test_tables(self):
        stage = Stage(0, alus=1, sram_bits=100)
        table = stage.add_table("t", default_action=1)
        table.install(9, 3)
        assert stage.table("t").lookup(9) == 3
        with pytest.raises(ConfigurationError):
            stage.add_table("t")


class TestPhv:
    def test_declare_and_access(self):
        phv = Phv(budget_bits=128)
        phv.declare("value", 64, value=10)
        assert phv["value"] == 10
        phv["value"] = 20
        assert phv["value"] == 20

    def test_width_truncates_values(self):
        phv = Phv(budget_bits=64)
        phv.declare("small", 4)
        phv["small"] = 0xFF
        assert phv["small"] == 0xF

    def test_budget_enforced(self):
        phv = Phv(budget_bits=96)
        phv.declare("a", 64)
        with pytest.raises(ResourceError, match="PHV"):
            phv.declare("b", 64)

    def test_duplicate_declaration_raises(self):
        phv = Phv(budget_bits=128)
        phv.declare("a", 8)
        with pytest.raises(ConfigurationError):
            phv.declare("a", 8)

    def test_undeclared_assignment_raises(self):
        phv = Phv(budget_bits=128)
        with pytest.raises(ConfigurationError):
            phv["ghost"] = 1

    def test_contains_and_used_bits(self):
        phv = Phv(budget_bits=128)
        phv.declare("a", 8)
        assert "a" in phv
        assert "b" not in phv
        assert phv.used_bits == 8


class TestPipeline:
    def test_stage_count_matches_model(self):
        pipe = Pipeline(MINI)
        assert len(pipe.stages) == MINI.stages

    def test_out_of_range_stage_raises(self):
        pipe = Pipeline(MINI)
        with pytest.raises(ResourceError):
            pipe.stage(MINI.stages)

    def test_program_runs_and_counts(self):
        pipe = Pipeline(MINI)

        def drop_odd(stage, phv):
            if phv["value"] % 2 == 1:
                phv.prune = True

        pipe.install(0, drop_odd)
        forwarded = 0
        for value in range(10):
            phv = pipe.new_phv()
            phv.declare("value", 64, value)
            if pipe.process(phv):
                forwarded += 1
        assert forwarded == 5
        assert pipe.stats.packets == 10
        assert pipe.stats.pruned == 5
        assert pipe.stats.pruning_rate == 0.5

    def test_prune_mark_does_not_stop_later_stages(self):
        # The paper: drops take effect at the end of the pipeline.
        pipe = Pipeline(MINI)
        seen_in_stage2 = []

        def mark(stage, phv):
            phv.prune = True

        def record(stage, phv):
            seen_in_stage2.append(phv["value"])

        pipe.install(0, mark)
        pipe.install(1, record)
        phv = pipe.new_phv()
        phv.declare("value", 64, 42)
        assert pipe.process(phv) is False
        assert seen_in_stage2 == [42]

    def test_stateful_distinct_on_pipeline(self):
        # A one-row, two-column DISTINCT cache built from raw registers:
        # demonstrates the rolling replacement runs within ALU budgets.
        pipe = Pipeline(ResourceModel(stages=2, alus_per_stage=2,
                                      sram_bits_per_stage=1024,
                                      tcam_entries=16, phv_bits=256))
        for i in range(2):
            pipe.stage(i).alloc_register("cell", size=1)

        def make_stage_program(index):
            def program(stage, phv):
                if phv["hit"]:
                    return
                stored = stage.reg_read("cell", 0)
                if stored == phv["value"]:
                    phv["hit"] = 1
                    phv.prune = True
                else:
                    stage.reg_write("cell", 0, phv["carry"])
                    phv["carry"] = stored

            return program

        for i in range(2):
            pipe.install(i, make_stage_program(i))

        def send(value):
            phv = pipe.new_phv()
            phv.declare("value", 64, value)
            phv.declare("carry", 64, value)
            phv.declare("hit", 1, 0)
            return pipe.process(phv)

        assert send(7) is True   # new value: forwarded
        assert send(7) is False  # duplicate: pruned
        assert send(8) is True
        assert send(7) is False  # still cached in second cell

    def test_reset_stats_keeps_state(self):
        pipe = Pipeline(MINI)
        phv = pipe.new_phv()
        pipe.process(phv)
        pipe.reset_stats()
        assert pipe.stats.packets == 0
