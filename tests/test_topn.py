"""Tests for TOP N pruning (repro.core.topn)."""

from __future__ import annotations

import random

import pytest

from repro.core.base import Guarantee, PruneDecision
from repro.core.topn import (
    TopNDeterministicPruner,
    TopNRandomizedPruner,
    master_topn,
)
from repro.errors import ConfigurationError


def _check_contract(pruner, stream, n):
    """Assert top-N over survivors equals top-N over the stream."""
    survivors = pruner.survivors(stream)
    assert sorted(master_topn(survivors, n)) == sorted(master_topn(stream, n))
    return survivors


class TestDeterministic:
    def test_warmup_forwards_first_n(self):
        pruner = TopNDeterministicPruner(n=3)
        for value in (5.0, 1.0, 9.0):
            assert pruner.process(value) is PruneDecision.FORWARD

    def test_prunes_below_t0_right_after_warmup(self):
        # The first N entries are all >= t0, so t0 is active immediately.
        pruner = TopNDeterministicPruner(n=3, thresholds=1)
        for value in (5.0, 4.0, 9.0):
            pruner.process(value)
        assert pruner.current_cutoff == 4.0
        assert pruner.process(3.0) is PruneDecision.PRUNE
        assert pruner.process(4.5) is PruneDecision.FORWARD

    def test_thresholds_grow_exponentially(self):
        pruner = TopNDeterministicPruner(n=2, thresholds=3)
        pruner.process(4.0)
        pruner.process(4.0)  # t0 = 4; ladder 4, 8, 16
        assert pruner._thresholds == [4.0, 8.0, 16.0]

    def test_threshold_activation_requires_n_large_values(self):
        pruner = TopNDeterministicPruner(n=2, thresholds=3)
        pruner.process(4.0)
        pruner.process(4.0)
        pruner.process(9.0)  # one value >= 8: t1 not yet active
        assert pruner.current_cutoff == 4.0
        pruner.process(10.0)  # second value >= 8 (both also count for t0)
        # t0 active (counters saw 2 >= 4), t1 active (2 >= 8).
        assert pruner.current_cutoff == 8.0
        assert pruner.process(5.0) is PruneDecision.PRUNE

    def test_contract_on_random_streams(self):
        rng = random.Random(5)
        for trial in range(5):
            stream = [rng.uniform(1, 1000) for _ in range(2000)]
            pruner = TopNDeterministicPruner(n=50, thresholds=4)
            _check_contract(pruner, stream, 50)

    def test_contract_on_sorted_ascending(self):
        # Worst case: increasing stream - everything above the running
        # threshold, correctness must still hold.
        stream = [float(i) for i in range(1, 500)]
        pruner = TopNDeterministicPruner(n=20, thresholds=4)
        _check_contract(pruner, stream, 20)

    def test_contract_on_sorted_descending(self):
        stream = [float(i) for i in range(500, 1, -1)]
        pruner = TopNDeterministicPruner(n=20, thresholds=4)
        survivors = _check_contract(pruner, stream, 20)
        # Descending: after warmup + counter fills, most entries prunable.
        assert len(survivors) < len(stream)

    def test_nonpositive_t0_disables_ladder(self):
        pruner = TopNDeterministicPruner(n=2, thresholds=4)
        pruner.process(-5.0)
        pruner.process(3.0)  # t0 = -5 <= 0: single threshold only
        assert pruner._thresholds == [-5.0]

    def test_contract_with_negative_values(self):
        rng = random.Random(9)
        stream = [rng.uniform(-100, 100) for _ in range(1000)]
        pruner = TopNDeterministicPruner(n=30, thresholds=4)
        _check_contract(pruner, stream, 30)

    def test_guarantee(self):
        assert TopNDeterministicPruner(n=1).guarantee is Guarantee.DETERMINISTIC

    def test_footprint(self):
        fp = TopNDeterministicPruner(n=250, thresholds=4).footprint()
        assert fp.stages == 5
        assert fp.sram_bits == 5 * 64

    def test_reset(self):
        pruner = TopNDeterministicPruner(n=2, thresholds=2)
        for v in (1.0, 2.0, 3.0, 4.0):
            pruner.process(v)
        pruner.reset()
        assert pruner.current_cutoff is None
        assert pruner.stats.processed == 0

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            TopNDeterministicPruner(n=0)
        with pytest.raises(ConfigurationError):
            TopNDeterministicPruner(n=5, thresholds=0)


class TestRandomized:
    def test_theorem2_sizing_applied(self):
        # Paper: N=1000, delta=1e-4, d=600 -> w=16; d=8000 -> w=5.
        assert TopNRandomizedPruner(n=1000, rows=600, delta=1e-4).cols == 16
        assert TopNRandomizedPruner(n=1000, rows=8000, delta=1e-4).cols == 5

    def test_explicit_cols_override(self):
        pruner = TopNRandomizedPruner(n=10, rows=64, cols=3)
        assert pruner.cols == 3

    def test_guarantee(self):
        assert TopNRandomizedPruner(n=10, rows=512).guarantee is Guarantee.PROBABILISTIC

    def test_contract_holds_with_sized_matrix(self):
        # With Theorem 2 sizing at delta=1e-4 a single seeded run should
        # essentially never fail.
        rng = random.Random(21)
        stream = [rng.uniform(0, 10_000) for _ in range(20_000)]
        pruner = TopNRandomizedPruner(n=100, rows=1024, delta=1e-4, seed=3)
        _check_contract(pruner, stream, 100)

    def test_prunes_most_of_a_large_stream(self):
        rng = random.Random(31)
        stream = [rng.uniform(0, 1e6) for _ in range(30_000)]
        pruner = TopNRandomizedPruner(n=50, rows=128, delta=1e-3, seed=5)
        survivors = pruner.survivors(stream)
        assert len(survivors) < len(stream) * 0.25

    def test_theorem3_bound_on_survivors(self):
        # Random-order stream: survivors <= ~ w d ln(me/(wd)) in
        # expectation; single run allowed 1.5x slack.
        from repro.core.sizing import topn_expected_unpruned

        rng = random.Random(41)
        m = 40_000
        stream = [rng.random() for _ in range(m)]
        pruner = TopNRandomizedPruner(n=20, rows=64, cols=6, seed=7)
        survivors = pruner.survivors(stream)
        bound = topn_expected_unpruned(m, 64, 6)
        assert len(survivors) <= bound * 1.5

    def test_monotone_increasing_stream_never_prunes(self):
        # Adversarial case the paper concedes: all entries forwarded.
        stream = [float(i) for i in range(2000)]
        pruner = TopNRandomizedPruner(n=10, rows=16, cols=4, seed=1)
        survivors = pruner.survivors(stream)
        assert len(survivors) == len(stream)

    def test_optimal_constructor(self):
        pruner = TopNRandomizedPruner.optimal(n=100, delta=1e-4)
        assert pruner.rows > 0 and pruner.cols > 0

    def test_seed_reproducibility(self):
        stream = [random.Random(1).uniform(0, 100) for _ in range(500)]
        a = TopNRandomizedPruner(n=5, rows=32, cols=3, seed=9).survivors(stream)
        b = TopNRandomizedPruner(n=5, rows=32, cols=3, seed=9).survivors(list(stream))
        assert a == b

    def test_footprint(self):
        fp = TopNRandomizedPruner(n=250, rows=4096, cols=4).footprint()
        assert fp.sram_bits == 4096 * 4 * 64
        assert fp.stages == 4

    def test_reset(self):
        pruner = TopNRandomizedPruner(n=5, rows=8, cols=2, seed=2)
        for v in (1.0, 2.0, 3.0):
            pruner.process(v)
        pruner.reset()
        assert pruner.stats.processed == 0

    def test_invalid_n(self):
        with pytest.raises(ConfigurationError):
            TopNRandomizedPruner(n=0, rows=16)


class TestMasterTopN:
    def test_returns_descending(self):
        assert master_topn([3.0, 9.0, 1.0, 7.0], 2) == [9.0, 7.0]

    def test_short_input(self):
        assert master_topn([1.0], 5) == [1.0]

    def test_ties_kept(self):
        assert master_topn([5.0, 5.0, 1.0], 2) == [5.0, 5.0]
