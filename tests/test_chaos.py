"""Property-based chaos suite: randomized fault schedules vs. reference.

The contract under test is the tentpole guarantee: for ANY seed-derived
fault schedule — packet drops, corruption, reordering, duplication,
switch reboots, register bit flips, stage exhaustion, worker crashes —
the cluster either produces exactly the reference output or records a
graceful degradation while still producing exactly the reference output.
There is no third outcome; a silent wrong answer is a failure.
"""

from __future__ import annotations

import pytest

from repro.engine.cluster import Cluster, ClusterConfig
from repro.engine.reference import run_reference
from repro.errors import ConfigurationError
from repro.faults import FAULT_KINDS, FaultPlan
from repro.workloads import bigdata

SEEDS = range(5)

_SCALE = bigdata.BigDataScale(
    rankings_rows=1500,
    uservisits_rows=3000,
    distinct_urls=600,
    distinct_user_agents=40,
    distinct_languages=8,
)


@pytest.fixture(scope="module")
def tables():
    data = bigdata.tables(_SCALE, seed=5)
    data["Rankings"] = bigdata.permuted(data["Rankings"], seed=1)
    return data


@pytest.fixture(scope="module")
def queries():
    return bigdata.benchmark_queries()


@pytest.fixture(scope="module")
def references(tables, queries):
    return {name: run_reference(query, tables) for name, query in queries.items()}


def _run_chaos(query, tables, plan, **config):
    cluster = Cluster(
        workers=5, config=ClusterConfig(fault_plan=plan, **config)
    )
    return cluster.run(query, tables)


class TestEveryOperatorUnderChaos:
    """All operators x 5 seeds x schedules drawing from all 8 fault kinds."""

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize(
        "name",
        [
            "Q1-filter",
            "Q2-distinct",
            "Q3-skyline",
            "Q4-topn",
            "Q5-groupby",
            "Q6-join",
            "Q7-having",
        ],
    )
    def test_output_matches_reference(self, name, seed, tables, queries, references):
        plan = FaultPlan.random(seed, 1500, kinds=FAULT_KINDS, count=6)
        result = _run_chaos(queries[name], tables, plan)
        assert result.output == references[name], (
            f"{name} seed={seed}: chaos changed the output"
        )
        assert result.faults is not None
        # Whatever fired was recorded — nothing is silently absorbed.
        assert result.faults["injected"] == len(result.faults["events"])
        for degradation in result.faults["degradations"]:
            assert degradation["action"] in {
                "continue-empty-state",
                "passthrough-remainder",
                "passthrough",
                "rebuild",
                "rebuild-build",
                "refetch-all",
                "restart-replay",
            }


class TestRebootSafeDegradation:
    """Table 4 safe operators continue with empty state, never passthrough
    (unless a stage was exhausted)."""

    @pytest.mark.parametrize("name", ["Q2-distinct", "Q4-topn", "Q5-groupby"])
    def test_reboot_continues_with_empty_state(
        self, name, tables, queries, references
    ):
        plan = FaultPlan.random(3, 1500, kinds=("reboot",), count=2)
        result = _run_chaos(queries[name], tables, plan)
        assert result.output == references[name]
        actions = {d["action"] for d in result.faults["degradations"]}
        assert actions == {"continue-empty-state"}

    def test_exhaustion_forwards_the_remainder(self, tables, queries, references):
        plan = FaultPlan.random(1, 1500, kinds=("exhaust",), count=1)
        result = _run_chaos(queries["Q2-distinct"], tables, plan)
        assert result.output == references["Q2-distinct"]
        actions = {d["action"] for d in result.faults["degradations"]}
        assert actions == {"passthrough-remainder"}
        # Fail-open shows up as traffic: less pruning than fault-free.
        fault_free = Cluster(workers=5).run(queries["Q2-distinct"], tables)
        assert result.total_forwarded > fault_free.total_forwarded


class TestJoinDegradationPolicy:
    """JOIN is not reboot-safe: probe-phase loss must rebuild or forward-all,
    and must never be silently wrong."""

    def _probe_reboot_plan(self, seed=0):
        # Window (0.6, 0.95) of 2*(L+R) entries lands inside the probe pass.
        return FaultPlan.random(
            seed, 2 * (1500 + 3000), kinds=("reboot",), count=1, window=(0.6, 0.95)
        )

    @pytest.mark.parametrize("policy", ["auto", "rebuild", "passthrough"])
    def test_probe_reboot_never_wrong(self, policy, tables, queries, references):
        result = _run_chaos(
            queries["Q6-join"], tables, self._probe_reboot_plan(),
            degrade_policy=policy,
        )
        assert result.output == references["Q6-join"]
        degradations = result.faults["degradations"]
        assert len(degradations) == 1
        if policy == "rebuild":
            assert degradations[0]["action"] == "rebuild"
        elif policy == "passthrough":
            assert degradations[0]["action"] == "passthrough"
        else:
            assert degradations[0]["action"] in {"rebuild", "passthrough"}

    def test_rebuild_pays_extra_build_traffic(self, tables, queries):
        result = _run_chaos(
            queries["Q6-join"], tables, self._probe_reboot_plan(),
            degrade_policy="rebuild",
        )
        names = [phase.name for phase in result.phases]
        assert "join-rebuild" in names
        rebuild = next(p for p in result.phases if p.name == "join-rebuild")
        assert rebuild.streamed == 2 * (1500 + 3000) // 2  # one build re-stream

    def test_passthrough_forwards_more(self, tables, queries, references):
        passthrough = _run_chaos(
            queries["Q6-join"], tables, self._probe_reboot_plan(),
            degrade_policy="passthrough",
        )
        fault_free = Cluster(workers=5).run(queries["Q6-join"], tables)
        assert passthrough.output == references["Q6-join"]
        assert passthrough.total_forwarded > fault_free.total_forwarded

    def test_build_reboot_restarts_the_build(self, tables, queries, references):
        plan = FaultPlan.random(
            2, 2 * (1500 + 3000), kinds=("reboot",), count=1, window=(0.0, 0.4)
        )
        result = _run_chaos(queries["Q6-join"], tables, plan)
        assert result.output == references["Q6-join"]
        assert result.faults["degradations"][0]["action"] == "rebuild-build"

    def test_invalid_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            ClusterConfig(degrade_policy="shrug")


class TestUnsafeOperatorsDegradeLoudly:
    @pytest.mark.parametrize("kind", ["reboot", "bitflip", "exhaust"])
    def test_having_refetches_everything(
        self, kind, tables, queries, references
    ):
        plan = FaultPlan.random(4, 3000, kinds=(kind,), count=1)
        result = _run_chaos(queries["Q7-having"], tables, plan)
        assert result.output == references["Q7-having"]
        actions = {d["action"] for d in result.faults["degradations"]}
        assert actions == {"refetch-all"}
        # The partial second pass degraded to a full one.
        refetch = next(p for p in result.phases if p.name == "having-refetch")
        assert refetch.streamed == 3000

    def test_skyline_reboot_replays_prefix(self, tables, queries, references):
        plan = FaultPlan.random(6, 1500, kinds=("reboot",), count=1)
        result = _run_chaos(queries["Q3-skyline"], tables, plan)
        assert result.output == references["Q3-skyline"]
        assert {d["action"] for d in result.faults["degradations"]} == {
            "restart-replay"
        }
        # The replayed prefix is visible as extra streamed traffic.
        assert result.total_streamed > 1500

    def test_worker_crash_replay_is_deduplicated(
        self, tables, queries, references
    ):
        plan = FaultPlan.random(8, 1500, kinds=("crash",), count=2)
        result = _run_chaos(queries["Q1-filter"], tables, plan)
        # COUNT would double-count replayed rows without row-id dedup.
        assert result.output == references["Q1-filter"]
        assert result.total_streamed > 1500


class TestChaosDeterminism:
    def test_same_plan_same_everything(self, tables, queries):
        plan = FaultPlan.random(11, 3000, kinds=FAULT_KINDS, count=8)

        def run():
            result = _run_chaos(queries["Q2-distinct"], tables, plan)
            return (result.output, result.faults, result.total_streamed,
                    result.total_forwarded)

        first, second = run(), run()
        assert first[0] == second[0]
        assert first[1] == second[1]
        assert first[2:] == second[2:]

    def test_report_carries_the_fault_account(self, tables, queries):
        plan = FaultPlan.random(1, 3000, kinds=("reboot",), count=1)
        report = _run_chaos(queries["Q2-distinct"], tables, plan).report()
        assert report["faults"]["planned"] == 1
        assert report["faults"]["injected"] == 1
        fault_free = Cluster(workers=5).run(queries["Q2-distinct"], tables)
        assert fault_free.report()["faults"] is None
