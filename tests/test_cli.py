"""Tests for the command-line interface (repro.cli)."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestQueryCommand:
    def test_distinct_query_runs_and_verifies(self, capsys):
        code = main(
            ["query", "SELECT DISTINCT userAgent FROM UserVisits", "--rows", "5000"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "verified" in out
        assert "pruned" in out

    def test_filter_query(self, capsys):
        code = main(
            ["query", "SELECT COUNT(*) FROM Rankings WHERE avgDuration < 10",
             "--rows", "5000"]
        )
        assert code == 0
        assert "cheetah" in capsys.readouterr().out

    def test_skyline_query_permutes(self, capsys):
        code = main(
            ["query", "SELECT pageURL FROM Rankings SKYLINE OF pageRank, avgDuration",
             "--rows", "4000"]
        )
        assert code == 0

    def test_no_verify_flag(self, capsys):
        code = main(
            ["query", "SELECT DISTINCT userAgent FROM UserVisits",
             "--rows", "4000", "--no-verify"]
        )
        assert code == 0
        assert "unverified" in capsys.readouterr().out

    def test_worker_and_network_flags(self, capsys):
        code = main(
            ["query", "SELECT DISTINCT userAgent FROM UserVisits",
             "--rows", "4000", "--workers", "3", "--network-gbps", "20"]
        )
        assert code == 0

    def test_bad_sql_returns_error_code(self, capsys):
        code = main(["query", "SELECT BROKEN"])
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestOtherCommands:
    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "DISTINCT-LRU" in out
        assert "JOIN-RBF" in out

    def test_workloads(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "Rankings" in out and "UserVisits" in out
        assert "Q4-topn" in out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestExplainCommand:
    def test_explain_prints_plan(self, capsys):
        assert main(["explain", "SELECT DISTINCT seller FROM Products"]) == 0
        out = capsys.readouterr().out
        assert "DistinctPruner" in out

    def test_explain_bad_sql(self, capsys):
        assert main(["explain", "SELECT"]) == 1


class TestCsvOption:
    def test_query_over_csv_table(self, capsys, tmp_path):
        path = tmp_path / "ratings.csv"
        path.write_text(
            "name,taste,texture\nPizza,7,5\nCheetos,8,6\nJello,9,4\n"
        )
        code = main(
            ["query", "SELECT DISTINCT name FROM Ratings",
             "--csv", f"Ratings={path}", "--rows", "1000"]
        )
        assert code == 0
        assert "verified" in capsys.readouterr().out

    def test_malformed_csv_spec(self, capsys):
        code = main(
            ["query", "SELECT DISTINCT name FROM Ratings", "--csv", "nonsense"]
        )
        assert code == 1
