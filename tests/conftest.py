"""Shared fixtures for the Cheetah reproduction test suite."""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.engine.table import Table


@pytest.fixture
def rng() -> random.Random:
    """A seeded stdlib RNG."""
    return random.Random(1234)


@pytest.fixture
def nprng() -> np.random.Generator:
    """A seeded numpy RNG."""
    return np.random.default_rng(1234)


@pytest.fixture
def products_table() -> Table:
    """The paper's running example: the Products table (Table 1a)."""
    return Table.from_rows(
        "Products",
        ["name", "seller", "price"],
        [
            ("Burger", "McCheetah", 4),
            ("Pizza", "Papizza", 7),
            ("Fries", "McCheetah", 2),
            ("Jello", "JellyFish", 5),
        ],
    )


@pytest.fixture
def ratings_table() -> Table:
    """The paper's running example: the Ratings table (Table 1b)."""
    return Table.from_rows(
        "Ratings",
        ["name", "taste", "texture"],
        [
            ("Pizza", 7, 5),
            ("Cheetos", 8, 6),
            ("Jello", 9, 4),
            ("Burger", 5, 7),
            ("Fries", 3, 3),
        ],
    )
