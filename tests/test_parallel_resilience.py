"""Crash and timeout guardrails of the parallel runner (`_gather`).

These drive :func:`repro.parallel.runner._gather` directly with small
task functions so the recovery machinery — pool respawn after a
``BrokenProcessPool``, per-shard timeout retry, in-parent sequential
fallback — is exercised without multi-second real workloads.  Task
functions live at module level so the fork-started pool pickles them by
reference; crash-once behaviour is coordinated through flag files.
"""

from __future__ import annotations

import multiprocessing
import os
import time

import pytest

from repro.engine.cluster import Cluster, ClusterConfig
from repro.errors import ShardTimeout, SharedMemoryUnavailable
from repro.obs import EventLog, MetricsRegistry
from repro.parallel import runner

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="resilience tests coordinate through fork-inherited module state",
)


def make_cluster(parallelism: int, shard_timeout=None) -> Cluster:
    cluster = Cluster(
        workers=parallelism,
        config=ClusterConfig(
            parallelism=parallelism, shard_timeout=shard_timeout
        ),
    )
    cluster.events = EventLog()
    return cluster


def event_kinds(cluster) -> list:
    return [event["kind"] for event in cluster.events.snapshot()]


# -- module-level task functions (picklable by reference) -------------------


def crash_once_task(spec: dict) -> dict:
    """Die hard on the first call per flag file, succeed afterwards."""
    if spec.get("crash") and not os.path.exists(spec["flag"]):
        with open(spec["flag"], "w"):
            pass
        os._exit(13)  # kills the worker -> BrokenProcessPool in the parent
    return {"shard": spec["shard"], "ok": True}


def crash_always_task(spec: dict) -> dict:
    os._exit(13)


def slow_once_task(spec: dict) -> dict:
    """Sleep past the deadline on the first call, return fast afterwards."""
    if not os.path.exists(spec["flag"]):
        with open(spec["flag"], "w"):
            pass
        time.sleep(spec["sleep"])
    return {"shard": spec["shard"], "ok": True}


def slow_in_child_task(spec: dict) -> dict:
    """Sleep only in pool workers; the in-parent fallback returns fast."""
    if os.getpid() != spec["parent_pid"]:
        time.sleep(spec["sleep"])
    return {"shard": spec["shard"], "ok": True}


def fail_in_parent_task(spec: dict) -> dict:
    """Wedge in pool workers AND blow up in the parent fallback."""
    if os.getpid() != spec["parent_pid"]:
        time.sleep(spec["sleep"])
        return {"shard": spec["shard"], "ok": True}
    raise ValueError("parent fallback rejected")


# -- pool respawn -----------------------------------------------------------


class TestPoolRespawn:
    def test_respawn_once_recovers_the_batch(self, tmp_path):
        cluster = make_cluster(parallelism=2)
        registry = MetricsRegistry()
        flag = str(tmp_path / "crashed")
        specs = [
            {"shard": 0, "crash": True, "flag": flag},
            {"shard": 1, "crash": False, "flag": flag},
        ]
        results = runner._gather(cluster, specs, crash_once_task, registry)
        assert sorted(results) == [0, 1]
        assert all(results[k]["ok"] for k in results)
        assert registry.counter_values()["pool_respawns_total{}"] == 1
        assert "pool-respawn" in event_kinds(cluster)

    def test_second_crash_degrades_to_sequential_fallback_error(self):
        cluster = make_cluster(parallelism=2)
        registry = MetricsRegistry()
        specs = [{"shard": 0}, {"shard": 1}]
        with pytest.raises(SharedMemoryUnavailable, match="died twice"):
            runner._gather(cluster, specs, crash_always_task, registry)
        # Respawned exactly once before giving up.
        assert registry.counter_values()["pool_respawns_total{}"] == 1

    def test_end_to_end_run_survives_a_worker_crash(self, tmp_path):
        # The cluster-level contract: a crashed pool never surfaces to
        # the caller as an exception; the run completes (respawned pool
        # or the cluster's sequential fallback) with the right answer.
        from repro.engine.plan import CountOp, Query
        from repro.engine.reference import run_reference
        from repro.engine.expressions import col
        from repro.workloads import bigdata

        tables = bigdata.tables(
            bigdata.BigDataScale(
                rankings_rows=500, uservisits_rows=1000, distinct_urls=100
            ),
            seed=1,
        )
        query = Query(CountOp("UserVisits", col("duration") > 1800))
        cluster = make_cluster(parallelism=2)
        # Crash the cached pool out from under the next run.
        pool = runner.get_pool(2)
        pool.submit(crash_always_task, {"shard": 0})
        result = cluster.run(query, tables)
        assert result.output == run_reference(query, tables)


# -- shard timeouts ---------------------------------------------------------


class TestShardTimeouts:
    def test_timeout_retried_once_on_the_pool(self, tmp_path):
        cluster = make_cluster(parallelism=2, shard_timeout=0.4)
        registry = MetricsRegistry()
        spec = {"shard": 0, "flag": str(tmp_path / "slow"), "sleep": 3.0}
        results = runner._gather(cluster, [spec], slow_once_task, registry)
        assert results[0]["ok"]
        counters = registry.counter_values()
        assert counters["shard_timeouts_total{outcome=retried}"] == 1
        assert "shard_timeouts_total{outcome=sequential}" not in counters
        events = [
            e for e in cluster.events.snapshot() if e["kind"] == "shard-timeout"
        ]
        assert len(events) == 1
        assert events[0]["labels"]["outcome"] == "retried"
        assert events[0]["labels"]["shard"] == "0"

    def test_second_timeout_falls_back_to_in_parent_sequential(self):
        # parallelism=1: the retry queues behind the abandoned sleeper
        # occupying the only pool slot, so it times out too and the
        # parent runs the task inline (where it returns immediately).
        cluster = make_cluster(parallelism=1, shard_timeout=0.4)
        registry = MetricsRegistry()
        spec = {"shard": 0, "parent_pid": os.getpid(), "sleep": 2.0}
        started = time.monotonic()
        results = runner._gather(cluster, [spec], slow_in_child_task, registry)
        assert results[0]["ok"]
        # The sequential fallback ran in the parent, not after the
        # sleeper woke up.
        assert time.monotonic() - started < spec["sleep"]
        counters = registry.counter_values()
        assert counters["shard_timeouts_total{outcome=retried}"] == 1
        assert counters["shard_timeouts_total{outcome=sequential}"] == 1
        outcomes = [
            e["labels"]["outcome"]
            for e in cluster.events.snapshot()
            if e["kind"] == "shard-timeout"
        ]
        assert outcomes == ["retried", "sequential"]

    def test_failed_fallback_raises_typed_shard_timeout(self):
        cluster = make_cluster(parallelism=1, shard_timeout=0.4)
        registry = MetricsRegistry()
        spec = {"shard": 0, "parent_pid": os.getpid(), "sleep": 2.0}
        with pytest.raises(ShardTimeout, match="timed out twice") as excinfo:
            runner._gather(cluster, [spec], fail_in_parent_task, registry)
        assert excinfo.value.shard == 0

    def test_no_timeout_configured_means_no_deadline_machinery(self, tmp_path):
        cluster = make_cluster(parallelism=2, shard_timeout=None)
        registry = MetricsRegistry()
        flag = str(tmp_path / "slowish")
        spec = {"shard": 0, "flag": flag, "sleep": 0.2}
        results = runner._gather(cluster, [spec], slow_once_task, registry)
        assert results[0]["ok"]
        assert "shard_timeouts_total{outcome=retried}" not in (
            registry.counter_values()
        )
        assert event_kinds(cluster) == []
