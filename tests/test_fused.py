"""Tests for the fused compiled pipeline (:mod:`repro.switch.fuse`).

The contract under test: a packed program that compiles to a
:class:`~repro.switch.fuse.FusedProgram` produces *byte-identical
outputs and pruner counters* to the per-pruner batched path at every
batch size; unfusable programs fall back with a labelled
``fused_fallback_total`` counter and still produce correct results;
shared digests are computed once per batch; the fused kernels read
shared-memory columns as views end to end (zero copies before the
survivor row-id gather); and cached serving results are frozen
read-only views.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.engine.cluster import Cluster, ClusterConfig
from repro.engine.expressions import col
from repro.engine.plan import (
    CountOp,
    DistinctOp,
    FilterOp,
    GroupByOp,
    HavingOp,
    Query,
    TopNOp,
)
from repro.engine.reference import run_reference
from repro.engine.table import Table
from repro.switch.fuse import (
    FUSED_DEFAULT_BATCH,
    FusedProgram,
    clear_fused_cache,
    fused_cache_stats,
    ladder_pass,
    numba_available,
    plan_fused,
    reset_ladder_backend,
    _ladder_numpy,
)

N_ROWS = 600

#: Every operator kind with a fused single-pass kernel.
FUSED_KINDS = ("filter", "topn", "distinct", "groupby")


def _make_query(kind: str) -> Query:
    return {
        "filter": Query(CountOp("T", (col("price") > 150.0) & (col("qty") <= 30))),
        "select": Query(FilterOp("T", col("price") > 400.0)),
        "topn": Query(TopNOp("T", "price", 25)),
        "distinct": Query(DistinctOp("T", ("url",))),
        "groupby": Query(GroupByOp("T", "agent", "price", "max")),
    }[kind]


@pytest.fixture(scope="module")
def tables():
    rng = np.random.default_rng(17)
    return {
        "T": Table(
            "T",
            {
                "price": np.round(rng.uniform(0.0, 500.0, N_ROWS), 2),
                "qty": rng.integers(0, 50, N_ROWS),
                "url": rng.integers(0, 40, N_ROWS),
                "agent": rng.integers(0, 12, N_ROWS),
            },
        )
    }


def _config(fused: bool, batch_size, **overrides) -> ClusterConfig:
    return ClusterConfig(
        batch_size=batch_size, fused=fused, topn_randomized=False, **overrides
    )


def _counters(registry, prefix: str = "") -> dict:
    """Counter samples, optionally restricted to a name prefix, with the
    fused-only telemetry dropped (fused runs add it by design)."""
    return {
        key: value
        for key, value in registry.counter_values().items()
        if key.startswith(prefix) and not key.startswith("fused_")
    }


# ---------------------------------------------------------------------------
# Equivalence: fused vs per-pruner, every kernel pair, every batch size
# ---------------------------------------------------------------------------


class TestFusedEquivalence:
    @pytest.mark.parametrize("batch_size", [1, 7, 4096])
    @pytest.mark.parametrize(
        "kinds", list(itertools.combinations(FUSED_KINDS, 2)), ids="+".join
    )
    def test_packed_pairs_match_per_pruner(self, tables, kinds, batch_size):
        queries = [_make_query(kind) for kind in kinds]
        expected = [run_reference(query, tables) for query in queries]
        fused = Cluster(workers=3, config=_config(True, batch_size)).run_packed(
            queries, tables
        )
        plain = Cluster(workers=3, config=_config(False, batch_size)).run_packed(
            queries, tables
        )
        assert [r.output for r in fused.results] == expected
        assert [r.output for r in plain.results] == expected
        assert fused.total_streamed == plain.total_streamed == N_ROWS
        assert fused.total_forwarded == plain.total_forwarded
        # The fused kernels funnel through each pruner's own
        # process_batch, so per-query pruner counters are identical.
        for fused_result, plain_result in zip(fused.results, plain.results):
            assert _counters(fused_result.metrics) == _counters(plain_result.metrics)
        assert _counters(fused.metrics) == _counters(plain.metrics)

    @pytest.mark.parametrize("batch_size", [1, 7, 4096])
    def test_all_four_kernels_packed(self, tables, batch_size):
        queries = [_make_query(kind) for kind in FUSED_KINDS]
        expected = [run_reference(query, tables) for query in queries]
        fused = Cluster(workers=3, config=_config(True, batch_size)).run_packed(
            queries, tables
        )
        assert [r.output for r in fused.results] == expected
        assert "fused_batches_total{}" in fused.metrics.counter_values()

    def test_packed_fuses_by_default_without_batch_size(self, tables):
        # batch_size=None: the packed path still fuses, using
        # FUSED_DEFAULT_BATCH internally.
        queries = [_make_query("filter"), _make_query("topn")]
        result = Cluster(workers=3, config=_config(True, None)).run_packed(
            queries, tables
        )
        assert [r.output for r in result.results] == [
            run_reference(query, tables) for query in queries
        ]
        counters = result.metrics.counter_values()
        expected_batches = -(-N_ROWS // 3 // FUSED_DEFAULT_BATCH) * 3
        assert counters["fused_batches_total{}"] == expected_batches

    @pytest.mark.parametrize("kind", FUSED_KINDS + ("select",))
    def test_single_pass_run_matches(self, tables, kind):
        query = _make_query(kind)
        expected = run_reference(query, tables)
        fused = Cluster(workers=3, config=_config(True, 64)).run(query, tables)
        plain = Cluster(workers=3, config=_config(False, 64)).run(query, tables)
        assert fused.output == expected
        assert plain.output == expected
        assert _counters(fused.metrics, "pruner") == _counters(plain.metrics, "pruner")
        assert "fused_batches_total{}" in fused.metrics.counter_values()
        assert "fused_batches_total{}" not in plain.metrics.counter_values()


# ---------------------------------------------------------------------------
# Fallbacks: unfusable programs take the per-pruner path, counted by reason
# ---------------------------------------------------------------------------


def _fallbacks(registry) -> dict:
    return {
        key: value
        for key, value in registry.counter_values().items()
        if key.startswith("fused_fallback_total")
    }


class TestFallbacks:
    def test_randomized_topn_falls_back(self, tables):
        # topn_randomized is the config default: per-entry RNG draws are
        # sequentially coupled, so the program must not fuse.
        queries = [Query(TopNOp("T", "price", 25)), _make_query("filter")]
        config = ClusterConfig(batch_size=64, fused=True, topn_randomized=True)
        result = Cluster(workers=3, config=config).run_packed(queries, tables)
        assert result.results[1].output == run_reference(queries[1], tables)
        counters = result.metrics.counter_values()
        assert counters['fused_fallback_total{reason=randomized-topn}'] == 1
        assert "fused_batches_total{}" not in counters

    def test_multi_column_distinct_falls_back(self, tables):
        query = Query(DistinctOp("T", ("url", "agent")))
        result = Cluster(workers=3, config=_config(True, 64)).run_packed(
            [query], tables
        )
        assert result.results[0].output == run_reference(query, tables)
        counters = result.metrics.counter_values()
        assert counters['fused_fallback_total{reason=multi-column-key}'] == 1

    def test_fingerprint_distinct_falls_back(self, tables):
        config = _config(True, 64, distinct_fingerprint=True)
        result = Cluster(workers=3, config=config).run_packed(
            [Query(DistinctOp("T", ("url",)))], tables
        )
        counters = result.metrics.counter_values()
        assert counters['fused_fallback_total{reason=fingerprint-distinct}'] == 1

    def test_where_stage_falls_back(self, tables):
        # A stateful operator behind a WHERE stage needs the two-stage
        # per-pruner path (only WHERE-passing rows may reach the pruner).
        query = Query(DistinctOp("T", ("url",)), where=col("price") > 100.0)
        result = Cluster(workers=3, config=_config(True, 64)).run(query, tables)
        assert result.output == run_reference(query, tables)
        counters = result.metrics.counter_values()
        assert counters['fused_fallback_total{reason=where-stage}'] == 1
        assert "fused_batches_total{}" not in counters

    def test_unsupported_operator_plan(self):
        query = Query(HavingOp("T", "url", "price", 10.0))
        plan = plan_fused([query], ("url", "price"), _config(True, 64))
        assert not plan.fused
        assert plan.fallback_reason == "unsupported-operator"

    def test_fallback_plan_cannot_bind(self):
        plan = plan_fused(
            [Query(TopNOp("T", "price", 5))],
            ("price",),
            ClusterConfig(topn_randomized=True),
        )
        assert plan.fallback_reason == "randomized-topn"
        with pytest.raises(ValueError, match="fallback"):
            FusedProgram(plan, [object()])

    def test_fused_disabled_by_config(self, tables):
        query = _make_query("filter")
        result = Cluster(workers=3, config=_config(False, 64)).run(query, tables)
        assert result.output == run_reference(query, tables)
        counters = result.metrics.counter_values()
        assert "fused_batches_total{}" not in counters
        assert not _fallbacks(result.metrics)


# ---------------------------------------------------------------------------
# Plan memoization and digest sharing
# ---------------------------------------------------------------------------


class TestPlanCacheAndSharing:
    def test_plans_are_memoized(self):
        clear_fused_cache()
        queries = [_make_query("filter"), _make_query("topn")]
        config = _config(True, 64)
        first = plan_fused(queries, ("price", "qty"), config)
        second = plan_fused(queries, ("price", "qty"), config)
        assert second is first
        assert fused_cache_stats() == {"hits": 1, "misses": 1}

    def test_plan_key_covers_config_knobs(self):
        clear_fused_cache()
        queries = [_make_query("topn")]
        deterministic = plan_fused(queries, ("price",), _config(True, 64))
        randomized = plan_fused(
            queries, ("price",), ClusterConfig(batch_size=64, topn_randomized=True)
        )
        assert deterministic.fused
        assert randomized.fallback_reason == "randomized-topn"
        assert fused_cache_stats() == {"hits": 0, "misses": 2}

    def test_digest_shared_across_kernels(self, tables):
        # DISTINCT(url) and GROUP BY url share the canonical uint64 pass
        # of the url column; the share is surfaced as a counter.
        queries = [
            Query(DistinctOp("T", ("url",))),
            Query(GroupByOp("T", "url", "price", "max")),
        ]
        result = Cluster(workers=3, config=_config(True, 64)).run_packed(
            queries, tables
        )
        assert [r.output for r in result.results] == [
            run_reference(query, tables) for query in queries
        ]
        counters = result.metrics.counter_values()
        assert counters["fused_digest_shared_total{}"] > 0

    def test_report_exposes_compile_caches(self, tables):
        result = Cluster(workers=3, config=_config(True, 64)).run(
            _make_query("filter"), tables
        )
        report = result.report()
        assert set(report["compile_cache"]) == {"fit_pack", "fused_plans"}
        assert set(report["compile_cache"]["fused_plans"]) == {"hits", "misses"}
        packed = Cluster(workers=3, config=_config(True, 64)).run_packed(
            [_make_query("filter"), _make_query("topn")], tables
        )
        assert "compile_cache" in packed.report()


# ---------------------------------------------------------------------------
# Zero-copy: shared-memory columns flow to kernels as views
# ---------------------------------------------------------------------------


class TestZeroCopy:
    def test_kernels_read_shared_memory_views(self, tables):
        from repro.parallel.shm import SharedColumnStore, attach_columns

        table = tables["T"]
        columns = ("price", "qty")
        source = {name: np.ascontiguousarray(table.column(name)) for name in columns}
        store = SharedColumnStore(source)
        try:
            attached, close = attach_columns(store.handle())
            try:
                query = _make_query("filter")
                config = _config(True, 128)
                cluster = Cluster(workers=1, config=config)
                plan = plan_fused([query], columns, config)
                assert plan.fused
                program = FusedProgram(plan, [cluster._build_pruner(query, tables)])
                program.trace = []
                survivors = []
                arrays = [attached[name] for name in columns]
                for start in range(0, N_ROWS, 128):
                    slices = tuple(a[start : start + 128] for a in arrays)
                    masks, _ = program.run_batch(slices)
                    survivors.append(np.flatnonzero(masks[0]) + start)
                # Every slice the kernels saw is a view over the shared
                # segment — zero column copies before the row-id gather.
                for slices in program.trace:
                    for sliced, base in zip(slices, arrays):
                        assert np.shares_memory(sliced, base)
                ids = np.concatenate(survivors)
                predicate = query.operator.predicate
                expected = np.flatnonzero(
                    (source["price"] > 150.0) & (source["qty"] <= 30)
                )
                assert np.array_equal(ids, expected), predicate
            finally:
                close()
        finally:
            store.close()

    def test_worker_shard_uses_fused_kernel(self, tables):
        from repro.parallel.shm import SharedColumnStore, attach_columns
        from repro.parallel.worker import run_single_pass_shard

        table = tables["T"]
        columns = ["price", "qty"]
        source = {name: np.ascontiguousarray(table.column(name)) for name in columns}
        store = SharedColumnStore(source)
        try:
            spec = {
                "handle": store.handle(),
                "query": _make_query("filter"),
                "columns": columns,
                "layout": ("bounds", 0, N_ROWS),
                "config": _config(True, 128),
                "batch": 128,
                "shard": 0,
            }
            result = run_single_pass_shard(spec)
            expected = np.flatnonzero(
                (source["price"] > 150.0) & (source["qty"] <= 30)
            )
            assert np.array_equal(result["survivors"], expected)
            assert result["streamed"] == N_ROWS
            assert result["forwarded"] == len(expected)
            counter_names = {c["name"] for c in result["metrics"]["counters"]}
            assert "fused_batches_total" in counter_names
        finally:
            store.close()

    def test_parallel_run_matches_sequential(self, tables):
        # End to end: the process-parallel path (fused worker kernels
        # over shared memory) agrees with the sequential fused path.
        for kind in FUSED_KINDS:
            query = _make_query(kind)
            sequential = Cluster(workers=3, config=_config(True, 128)).run(
                query, tables
            )
            parallel = Cluster(
                workers=3, config=_config(True, 128, parallelism=2)
            ).run(query, tables)
            assert parallel.output == sequential.output == run_reference(query, tables)


# ---------------------------------------------------------------------------
# Numba backend: opt-in, bit-identical, absent-safe
# ---------------------------------------------------------------------------


class TestLadderBackend:
    def _ladder_inputs(self):
        rng = np.random.default_rng(5)
        rest = rng.uniform(0.0, 1000.0, 512)
        thresholds = np.sort(rng.uniform(0.0, 1000.0, 4))[::-1].copy()
        counters = np.zeros(4, dtype=np.int64)
        return rest, thresholds, counters

    def test_numpy_backend_is_default(self, monkeypatch):
        monkeypatch.delenv("CHEETAH_NUMBA", raising=False)
        reset_ladder_backend()
        try:
            rest, thresholds, counters = self._ladder_inputs()
            expected_counters = counters.copy()
            expected = _ladder_numpy(rest, thresholds, expected_counters, 40)
            got = ladder_pass(rest, thresholds, counters, 40)
            assert np.array_equal(got, expected)
            assert np.array_equal(counters, expected_counters)
        finally:
            reset_ladder_backend()

    def test_missing_numba_is_never_an_error(self, monkeypatch):
        monkeypatch.setenv("CHEETAH_NUMBA", "1")
        reset_ladder_backend()
        try:
            rest, thresholds, counters = self._ladder_inputs()
            reference = _ladder_numpy(rest, thresholds, counters.copy(), 40)
            got = ladder_pass(rest, thresholds, counters, 40)
            assert np.array_equal(got, reference)
        finally:
            reset_ladder_backend()

    def test_numba_backend_bit_identical(self, monkeypatch):
        pytest.importorskip("numba")
        monkeypatch.setenv("CHEETAH_NUMBA", "1")
        reset_ladder_backend()
        try:
            rest, thresholds, counters = self._ladder_inputs()
            jit_counters = counters.copy()
            reference = _ladder_numpy(rest, thresholds, counters, 40)
            got = ladder_pass(rest, thresholds, jit_counters, 40)
            assert np.array_equal(got, reference)
            assert np.array_equal(jit_counters, counters)
        finally:
            reset_ladder_backend()


# ---------------------------------------------------------------------------
# Frozen result-cache views
# ---------------------------------------------------------------------------


class TestFrozenResults:
    def test_freeze_preserves_equality(self):
        from repro.serve.cache import FrozenList, freeze_result

        assert freeze_result({1, 2}) == {1, 2}
        assert freeze_result({"a": 1}) == {"a": 1}
        assert freeze_result([3, 1, 2]) == [3, 1, 2]
        assert freeze_result(42) == 42
        frozen = freeze_result([1])
        assert isinstance(frozen, FrozenList)
        assert freeze_result(frozen) is frozen

    def test_frozen_list_rejects_mutation(self):
        from repro.serve.cache import freeze_result

        frozen = freeze_result([1, 2, 3])
        for mutate in (
            lambda: frozen.append(4),
            lambda: frozen.extend([4]),
            lambda: frozen.pop(),
            lambda: frozen.sort(),
            lambda: frozen.__setitem__(0, 9),
            lambda: frozen.__delitem__(0),
        ):
            with pytest.raises(TypeError, match="read-only"):
                mutate()

    def test_frozen_set_and_dict_reject_mutation(self):
        from repro.serve.cache import freeze_result

        frozen_set = freeze_result({1, 2})
        assert not hasattr(frozen_set, "add")
        frozen_map = freeze_result({"a": 1})
        with pytest.raises(TypeError):
            frozen_map["b"] = 2

    def test_result_cache_hits_share_one_frozen_view(self):
        from repro.serve.cache import ResultCache

        cache = ResultCache(max_entries=4)
        original = {10, 20}
        cache.put("plan", 1, original)
        hit, first = cache.get("plan", 1)
        assert hit and first == original
        _, second = cache.get("plan", 1)
        assert second is first  # shared view, no per-hit copy
        # Mutating the caller's original after put never leaks in.
        original.add(30)
        _, third = cache.get("plan", 1)
        assert third == {10, 20}

    def test_program_cache_fused_plan_warm_path(self):
        from repro.serve.cache import ProgramCache

        clear_fused_cache()
        cache = ProgramCache(max_entries=8)
        queries = [_make_query("filter"), _make_query("topn")]
        config = _config(True, 64)
        first = cache.fused_plan(queries, ("price", "qty"), config)
        second = cache.fused_plan(queries, ("price", "qty"), config)
        assert second is first
        assert cache.stats()["hits"] == 1
