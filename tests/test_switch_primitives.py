"""Tests for the dataplane operation set (repro.switch.primitives)."""

from __future__ import annotations

import pytest

from repro.errors import UnsupportedOperationError
from repro.switch.primitives import AluOp, alu, is_power_of_two, msb_index

_MASK64 = (1 << 64) - 1


class TestAluArithmetic:
    def test_add(self):
        assert alu(AluOp.ADD, 3, 4) == 7

    def test_add_wraps_64_bits(self):
        assert alu(AluOp.ADD, _MASK64, 1) == 0

    def test_sub(self):
        assert alu(AluOp.SUB, 10, 4) == 6

    def test_sub_wraps(self):
        assert alu(AluOp.SUB, 0, 1) == _MASK64

    def test_min_max(self):
        assert alu(AluOp.MIN, 3, 9) == 3
        assert alu(AluOp.MAX, 3, 9) == 9


class TestAluComparisons:
    @pytest.mark.parametrize(
        "op,a,b,expected",
        [
            (AluOp.EQ, 5, 5, 1),
            (AluOp.EQ, 5, 6, 0),
            (AluOp.NEQ, 5, 6, 1),
            (AluOp.GT, 6, 5, 1),
            (AluOp.GT, 5, 5, 0),
            (AluOp.GE, 5, 5, 1),
            (AluOp.LT, 4, 5, 1),
            (AluOp.LE, 5, 5, 1),
        ],
    )
    def test_comparison(self, op, a, b, expected):
        assert alu(op, a, b) == expected


class TestAluBitOps:
    def test_and_or_xor(self):
        assert alu(AluOp.AND, 0b1100, 0b1010) == 0b1000
        assert alu(AluOp.OR, 0b1100, 0b1010) == 0b1110
        assert alu(AluOp.XOR, 0b1100, 0b1010) == 0b0110

    def test_shifts(self):
        assert alu(AluOp.SHL, 1, 4) == 16
        assert alu(AluOp.SHR, 16, 4) == 1

    def test_shift_amount_masked(self):
        # Hardware shifts mask the amount to 6 bits.
        assert alu(AluOp.SHL, 1, 64) == 1

    def test_hash_is_deterministic(self):
        assert alu(AluOp.HASH, 123, 7) == alu(AluOp.HASH, 123, 7)


class TestFunctionConstraints:
    """§2.2: multiplication, division, log, strings are not expressible."""

    @pytest.mark.parametrize("op", ["mul", "div", "mod", "log", "exp", "sqrt", "strcmp", "like"])
    def test_forbidden_ops_raise(self, op):
        with pytest.raises(UnsupportedOperationError):
            alu(op, 4, 2)

    def test_unknown_op_raises(self):
        with pytest.raises(UnsupportedOperationError):
            alu("frobnicate", 1, 2)

    def test_string_names_accepted_for_legal_ops(self):
        assert alu("add", 2, 2) == 4
        assert alu("gt", 3, 1) == 1


class TestMsbIndex:
    @pytest.mark.parametrize(
        "value,expected", [(1, 0), (2, 1), (3, 1), (255, 7), (256, 8), (1 << 63, 63)]
    )
    def test_msb(self, value, expected):
        assert msb_index(value) == expected

    def test_nonpositive_raises(self):
        with pytest.raises(UnsupportedOperationError):
            msb_index(0)
        with pytest.raises(UnsupportedOperationError):
            msb_index(-4)


class TestPowerOfTwo:
    def test_powers(self):
        assert is_power_of_two(1)
        assert is_power_of_two(1024)

    def test_non_powers(self):
        assert not is_power_of_two(0)
        assert not is_power_of_two(3)
        assert not is_power_of_two(-2)
