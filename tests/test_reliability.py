"""Tests for the §7.2 reliability protocol (repro.net.reliability)."""

from __future__ import annotations

import pytest

from repro.core.base import PassthroughPruner, PruneDecision, Pruner
from repro.core.distinct import DistinctPruner, master_distinct
from repro.core.topn import TopNDeterministicPruner, master_topn
from repro.errors import ProtocolError
from repro.net.packets import CheetahPacket
from repro.net.reliability import (
    LossyLink,
    ReliableTransfer,
    SwitchReliabilityState,
    packets_for,
)
from repro.switch.resources import ResourceFootprint
import random


class _PruneEven(Pruner):
    """Prunes even integers — a deterministic, stateless test pruner."""

    def process(self, entry):
        decision = PruneDecision.PRUNE if entry % 2 == 0 else PruneDecision.FORWARD
        self.stats.record(decision)
        return decision

    def footprint(self):
        return ResourceFootprint(label="EVEN")


class TestSwitchReliabilityState:
    def test_in_order_processing(self):
        state = SwitchReliabilityState(_PruneEven())
        packet = CheetahPacket(fid=0, seq=0, values=(2,))
        action, ack = state.on_packet(packet, 2)
        assert action == "prune"
        assert ack is not None and ack.seq == 0

    def test_forward_action_has_no_switch_ack(self):
        state = SwitchReliabilityState(_PruneEven())
        action, ack = state.on_packet(CheetahPacket(fid=0, seq=0, values=(3,)), 3)
        assert action == "forward"
        assert ack is None

    def test_retransmission_forwarded_without_reprocessing(self):
        # Y <= X: the switch must NOT run the pruner again (§7.2).
        pruner = _PruneEven()
        state = SwitchReliabilityState(pruner)
        state.on_packet(CheetahPacket(fid=0, seq=0, values=(2,)), 2)  # pruned
        processed_before = pruner.stats.processed
        action, ack = state.on_packet(CheetahPacket(fid=0, seq=0, values=(2,)), 2)
        assert action == "forward"  # even though it was pruned originally!
        assert pruner.stats.processed == processed_before

    def test_gap_drops_packet(self):
        state = SwitchReliabilityState(_PruneEven())
        action, _ = state.on_packet(CheetahPacket(fid=0, seq=5, values=(1,)), 1)
        assert action == "drop"
        assert state.last_processed(0) == -1

    def test_per_fid_sequence_spaces(self):
        state = SwitchReliabilityState(PassthroughPruner())
        state.on_packet(CheetahPacket(fid=0, seq=0, values=(1,)), 1)
        action, _ = state.on_packet(CheetahPacket(fid=1, seq=0, values=(1,)), 1)
        assert action == "forward"
        assert state.last_processed(0) == 0
        assert state.last_processed(1) == 0


class TestReliableTransferNoLoss:
    def test_all_unpruned_delivered_once(self):
        transfer = ReliableTransfer(PassthroughPruner(), loss=0.0)
        entries = list(range(50))
        delivered = transfer.run(packets_for(entries))
        assert delivered == entries
        assert transfer.stats.retransmissions == 0
        assert transfer.stats.duplicates_at_master == 0

    def test_pruned_packets_acked_by_switch(self):
        transfer = ReliableTransfer(_PruneEven(), loss=0.0)
        delivered = transfer.run(packets_for(list(range(10))))
        assert delivered == [1, 3, 5, 7, 9]
        assert transfer.stats.switch_acks == 5
        assert transfer.stats.master_acks == 5

    def test_duplicate_seq_rejected(self):
        transfer = ReliableTransfer(PassthroughPruner())
        packets = [CheetahPacket(fid=0, seq=0, values=(1,))] * 2
        with pytest.raises(ProtocolError):
            transfer.run(packets)


class TestReliableTransferWithLoss:
    @pytest.mark.parametrize("loss", [0.05, 0.2, 0.4])
    def test_every_unpruned_entry_eventually_delivered(self, loss):
        transfer = ReliableTransfer(_PruneEven(), loss=loss, seed=7)
        entries = list(range(60))
        delivered = transfer.run(packets_for(entries))
        # At-least-once delivery of every forwarded entry.
        assert set(delivered) >= {e for e in entries if e % 2 == 1}

    def test_retransmissions_happen_under_loss(self):
        transfer = ReliableTransfer(PassthroughPruner(), loss=0.3, seed=3)
        transfer.run(packets_for(list(range(40))))
        assert transfer.stats.retransmissions > 0

    def test_pruned_retransmissions_may_reach_master(self):
        # The §7.2 subtlety: a pruned packet whose switch-ACK was lost is
        # retransmitted; the switch sees Y <= X and forwards it unprocessed,
        # so the master can receive entries the pruner dropped.  Query
        # correctness survives because pruners are superset-safe.
        found = False
        for seed in range(30):
            transfer = ReliableTransfer(_PruneEven(), loss=0.4, seed=seed)
            delivered = transfer.run(packets_for(list(range(30))))
            if any(e % 2 == 0 for e in delivered):
                found = True
                break
        assert found, "expected at least one pruned retransmission to slip through"

    def test_distinct_query_correct_under_loss(self):
        # End-to-end superset safety: DISTINCT output is exact even when
        # pruned retransmissions reach the master.
        rng = random.Random(11)
        entries = [rng.randrange(40) for _ in range(200)]
        transfer = ReliableTransfer(
            DistinctPruner(rows=16, cols=2), loss=0.3, seed=13
        )
        delivered = transfer.run(packets_for(entries))
        assert set(master_distinct(delivered)) == set(entries)

    def test_topn_query_correct_under_loss(self):
        rng = random.Random(17)
        entries = [rng.randrange(1, 10_000) for _ in range(300)]
        transfer = ReliableTransfer(
            TopNDeterministicPruner(n=20, thresholds=3), loss=0.25, seed=19
        )
        transfer.run(packets_for(entries))
        # The CMaster completes over seq-deduped entries: duplicates from
        # retransmissions must not double-count in a multiset query.
        delivered = transfer.master_unique_entries
        assert sorted(master_topn([float(d) for d in delivered], 20)) == sorted(
            master_topn([float(e) for e in entries], 20)
        )

    def test_max_rounds_guard(self):
        transfer = ReliableTransfer(
            PassthroughPruner(), loss=0.9, seed=1, max_rounds=2
        )
        with pytest.raises(ProtocolError):
            transfer.run(packets_for(list(range(100))))


class TestLossyLink:
    def test_zero_loss_always_delivers(self):
        link = LossyLink(0.0, random.Random(1))
        assert all(link.deliver() for _ in range(100))

    def test_loss_rate_approximate(self):
        link = LossyLink(0.3, random.Random(5))
        results = [link.deliver() for _ in range(10_000)]
        drop_rate = 1 - sum(results) / len(results)
        assert 0.25 < drop_rate < 0.35
        assert link.dropped == 10_000 - sum(results)

    def test_invalid_loss(self):
        with pytest.raises(ProtocolError):
            LossyLink(1.0, random.Random(1))


class TestPacketsFor:
    def test_integers(self):
        packets = packets_for([5, 6])
        assert packets[0].values == (5,)
        assert packets[1].seq == 1

    def test_tuples_spread_values(self):
        packets = packets_for([(1, 2, 3)])
        assert packets[0].values == (1, 2, 3)


class TestGilbertElliottLink:
    def _link(self, seed=1, **kwargs):
        from repro.net.reliability import GilbertElliottLink

        return GilbertElliottLink(random.Random(seed), **kwargs)

    def test_loss_between_good_and_bad_rates(self):
        link = self._link(good_loss=0.01, bad_loss=0.8)
        results = [link.deliver() for _ in range(20_000)]
        drop_rate = 1 - sum(results) / len(results)
        assert 0.01 < drop_rate < 0.8

    def test_losses_are_bursty(self):
        # Consecutive drops should cluster far above the independent-loss
        # expectation at the same average rate.
        link = self._link(seed=3, good_loss=0.0, bad_loss=0.9,
                          p_good_to_bad=0.02, p_bad_to_good=0.2)
        outcomes = [link.deliver() for _ in range(50_000)]
        drops = sum(1 for x in outcomes if not x)
        pairs = sum(
            1 for a, b in zip(outcomes, outcomes[1:]) if not a and not b
        )
        rate = drops / len(outcomes)
        independent_pairs = rate * rate * len(outcomes)
        assert pairs > independent_pairs * 3

    def test_protocol_converges_under_bursts(self):
        from repro.core.distinct import DistinctPruner, master_distinct
        from repro.net.reliability import GilbertElliottLink, ReliableTransfer

        rng = random.Random(5)
        entries = [rng.randrange(50) for _ in range(150)]
        # The factory swaps every hop to a bursty link; all four share the
        # transfer's seeded RNG, as the default LossyLink wiring does.
        transfer = ReliableTransfer(
            DistinctPruner(rows=8, cols=2),
            seed=7,
            link_factory=lambda link_rng: GilbertElliottLink(link_rng),
        )
        assert all(
            isinstance(link, GilbertElliottLink)
            for link in (transfer.uplink, transfer.downlink,
                         transfer.ack_switch_link, transfer.ack_master_link)
        )
        transfer.run(packets_for(entries))
        delivered = transfer.master_unique_entries
        assert set(master_distinct(delivered)) == set(entries)

    def test_invalid_params(self):
        from repro.errors import ProtocolError

        with pytest.raises(ProtocolError):
            self._link(good_loss=1.0)
        with pytest.raises(ProtocolError):
            self._link(p_bad_to_good=0.0)


class TestMultiFlowTransfer:
    def _flows(self, workers=3, per_worker=60, distinct=25, seed=1):
        rng = random.Random(seed)
        flows = {}
        entries = {}
        for fid in range(workers):
            values = [rng.randrange(distinct) for _ in range(per_worker)]
            entries[fid] = values
            flows[fid] = [
                CheetahPacket(fid=fid, seq=i, values=(v,))
                for i, v in enumerate(values)
            ]
        return flows, entries

    def test_shared_pruner_dedupes_across_workers(self):
        from repro.net.reliability import MultiFlowTransfer

        flows, entries = self._flows(seed=2)
        transfer = MultiFlowTransfer(DistinctPruner(rows=64, cols=2))
        delivered = transfer.run(flows)
        all_values = [v for vals in entries.values() for v in vals]
        # Aggregated dedup: far fewer forwards than total entries, and
        # the union of values survives exactly.
        assert len(delivered) < len(all_values) * 0.5
        assert set(master_distinct(delivered)) == set(all_values)

    def test_correct_under_loss(self):
        from repro.net.reliability import MultiFlowTransfer

        flows, entries = self._flows(workers=4, seed=3)
        transfer = MultiFlowTransfer(
            DistinctPruner(rows=32, cols=2), loss=0.25, seed=5
        )
        delivered = transfer.run(flows)
        all_values = [v for vals in entries.values() for v in vals]
        assert set(master_distinct(delivered)) == set(all_values)

    def test_per_fid_sequences_independent(self):
        from repro.net.reliability import MultiFlowTransfer

        flows, _ = self._flows(workers=2, per_worker=10, seed=4)
        transfer = MultiFlowTransfer(PassthroughPruner())
        transfer.run(flows)
        assert transfer.switch.last_processed(0) == 9
        assert transfer.switch.last_processed(1) == 9

    def test_mismatched_fid_rejected(self):
        from repro.net.reliability import MultiFlowTransfer

        transfer = MultiFlowTransfer(PassthroughPruner())
        with pytest.raises(ProtocolError):
            transfer.run({0: [CheetahPacket(fid=1, seq=0, values=(1,))]})

    def test_windowed_multiflow(self):
        from repro.net.reliability import MultiFlowTransfer

        flows, entries = self._flows(workers=3, seed=6)
        transfer = MultiFlowTransfer(
            DistinctPruner(rows=32, cols=2), loss=0.15, seed=7, window=8
        )
        delivered = transfer.run(flows)
        all_values = [v for vals in entries.values() for v in vals]
        assert set(master_distinct(delivered)) == set(all_values)

    def test_cworker_services_feed_multiflow(self):
        # Full stack: CWorkers -> MultiFlowTransfer -> CMaster.
        import numpy as np

        from repro.engine.table import Table
        from repro.net.reliability import MultiFlowTransfer
        from repro.net.services import CMaster, CWorker

        table = Table("T", {"v": np.arange(60) % 13})
        parts = table.partition(3)
        flows = {
            fid: CWorker(fid=fid, partition=part, columns=["v"]).materialize()
            for fid, part in enumerate(parts)
        }
        transfer = MultiFlowTransfer(
            DistinctPruner(rows=16, cols=2),
            decode_entry=lambda p: p.values[0],
            loss=0.2,
            seed=9,
        )
        transfer.run(flows)
        master = CMaster(expected_fids=range(3))
        for packet in transfer.master_unique_packets:
            master.receive(packet)
        assert master.complete
        received = {row[0] for row in master.rows()}
        assert received == set(range(13))
