"""Tests for the Monte-Carlo guarantee harness (repro.analysis.montecarlo)."""

from __future__ import annotations

import random

import pytest

from repro.analysis.montecarlo import FailureEstimate, estimate_failure_rate
from repro.core.topn import TopNRandomizedPruner, master_topn
from repro.errors import ConfigurationError


class TestFailureEstimate:
    def test_rate(self):
        assert FailureEstimate(trials=50, failures=5).rate == 0.1

    def test_wilson_interval_contains_rate(self):
        estimate = FailureEstimate(trials=100, failures=10)
        lower, upper = estimate.wilson_interval()
        assert lower < 0.1 < upper

    def test_zero_failures_interval_starts_at_zero(self):
        lower, upper = FailureEstimate(trials=60, failures=0).wilson_interval()
        assert lower == 0.0
        assert upper > 0.0  # no free certainty from finite trials

    def test_consistency_check_direction(self):
        # 30 failures in 60 trials refute delta = 1e-4...
        bad = FailureEstimate(trials=60, failures=30)
        assert not bad.consistent_with(1e-4)
        # ...but 0 failures are consistent with it.
        good = FailureEstimate(trials=60, failures=0)
        assert good.consistent_with(1e-4)

    def test_interval_bounds_clamped(self):
        lower, upper = FailureEstimate(trials=3, failures=3).wilson_interval()
        assert 0.0 <= lower <= upper <= 1.0


class TestEstimateFailureRate:
    def test_topn_guarantee_not_refuted(self):
        rng = random.Random(1)
        stream = [rng.random() for _ in range(3000)]
        n, delta = 30, 0.01
        expected = sorted(master_topn(stream, n))

        estimate = estimate_failure_rate(
            make_pruner=lambda seed: TopNRandomizedPruner(
                n=n, rows=512, delta=delta, seed=seed
            ),
            stream=stream,
            is_correct=lambda survivors: sorted(master_topn(survivors, n))
            == expected,
            trials=30,
        )
        assert estimate.consistent_with(delta)

    def test_undersized_matrix_fails_often(self):
        # Sanity: a deliberately broken configuration (w forced to 1)
        # should fail at a rate the harness can measure.
        rng = random.Random(2)
        stream = [rng.random() for _ in range(2000)]
        n = 50
        expected = sorted(master_topn(stream, n))
        estimate = estimate_failure_rate(
            make_pruner=lambda seed: TopNRandomizedPruner(
                n=n, rows=8, cols=1, seed=seed
            ),
            stream=stream,
            is_correct=lambda survivors: sorted(master_topn(survivors, n))
            == expected,
            trials=20,
        )
        assert estimate.failures > 10
        assert not estimate.consistent_with(1e-4)

    def test_invalid_trials(self):
        with pytest.raises(ConfigurationError):
            estimate_failure_rate(lambda s: None, [], lambda s: True, trials=0)
