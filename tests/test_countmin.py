"""Tests for the Count-Min sketch (repro.sketches.countmin)."""

from __future__ import annotations

import random

import pytest

from repro.errors import ConfigurationError
from repro.sketches.countmin import CountMinSketch


class TestBasics:
    def test_single_add_estimates_exactly(self):
        cms = CountMinSketch(width=256, depth=3)
        cms.add("k", 5)
        assert cms.estimate("k") == 5

    def test_unseen_key_estimates_zero_when_empty(self):
        cms = CountMinSketch(width=64, depth=3)
        assert cms.estimate("never") == 0

    def test_add_returns_new_estimate(self):
        cms = CountMinSketch(width=256, depth=3)
        assert cms.add("k", 2) >= 2
        assert cms.add("k", 3) >= 5

    def test_default_amount_is_one(self):
        cms = CountMinSketch(width=64, depth=2)
        cms.add("k")
        assert cms.estimate("k") >= 1

    def test_total_tracks_sum(self):
        cms = CountMinSketch(width=64, depth=2)
        cms.update([("a", 1), ("b", 2), ("a", 3)])
        assert cms.total == 6

    def test_clear(self):
        cms = CountMinSketch(width=64, depth=2)
        cms.add("k", 10)
        cms.clear()
        assert cms.estimate("k") == 0
        assert cms.total == 0

    def test_negative_update_rejected(self):
        cms = CountMinSketch(width=64, depth=2)
        with pytest.raises(ConfigurationError):
            cms.add("k", -1)

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ConfigurationError):
            CountMinSketch(width=0, depth=3)
        with pytest.raises(ConfigurationError):
            CountMinSketch(width=10, depth=0)

    def test_sram_accounting(self):
        cms = CountMinSketch(width=1024, depth=3)
        assert cms.sram_bits() == 1024 * 3 * 64


class TestOneSidedError:
    """The invariant HAVING correctness rests on: estimate >= truth."""

    @pytest.mark.parametrize("conservative", [False, True])
    def test_estimate_never_undercounts(self, conservative):
        rng = random.Random(42)
        cms = CountMinSketch(width=128, depth=3, conservative=conservative)
        truth = {}
        for _ in range(5000):
            key = rng.randrange(400)
            amount = rng.randrange(1, 10)
            cms.add(key, amount)
            truth[key] = truth.get(key, 0) + amount
        for key, true_total in truth.items():
            assert cms.estimate(key) >= true_total

    def test_conservative_is_at_most_plain(self):
        rng = random.Random(7)
        plain = CountMinSketch(width=64, depth=3, seed=5)
        cons = CountMinSketch(width=64, depth=3, conservative=True, seed=5)
        stream = [(rng.randrange(200), rng.randrange(1, 5)) for _ in range(3000)]
        plain.update(stream)
        cons.update(stream)
        for key in range(200):
            assert cons.estimate(key) <= plain.estimate(key)

    def test_wide_sketch_is_nearly_exact(self):
        cms = CountMinSketch(width=1 << 14, depth=3)
        for i in range(100):
            cms.add(i, i + 1)
        exact = sum(1 for i in range(100) if cms.estimate(i) == i + 1)
        assert exact >= 98


class TestHeavyKeys:
    def test_heavy_keys_is_superset_of_truth(self):
        rng = random.Random(3)
        cms = CountMinSketch(width=256, depth=3)
        truth = {}
        for _ in range(4000):
            key = rng.randrange(100)
            cms.add(key, 1)
            truth[key] = truth.get(key, 0) + 1
        threshold = 50
        reported = cms.heavy_keys(range(100), threshold)
        true_heavy = {k for k, v in truth.items() if v > threshold}
        assert true_heavy <= set(reported)

    def test_heavy_keys_returns_estimates(self):
        cms = CountMinSketch(width=256, depth=3)
        cms.add("big", 100)
        reported = cms.heavy_keys(["big", "small"], 10)
        assert reported["big"] >= 100
        assert "small" not in reported
